//! Replay a recorded descent: parse a [`JsonlSink`](crate::JsonlSink)
//! trace back into [`DescentEvent`]s and render run summaries from it.
//!
//! The JSONL format is CCQ's own (hand-rolled, one object per line, see
//! [`crate::event::event_json`]); the parser here is its exact inverse:
//! floats were written in shortest round-trip form, so
//! `parse_events(jsonl)` reproduces the original event stream
//! bit-for-bit (non-finite floats were serialized as `null` and come
//! back as NaN). That makes offline analysis equivalent to live
//! observation: feeding a replayed stream into a
//! [`MetricsSink`](crate::MetricsSink) with the same
//! [`ManualClock`](crate::ManualClock) produces a byte-identical
//! exposition — the golden-trace suite enforces exactly this.
//!
//! [`render_run_summary`] is the human-readable view the `ccq-report`
//! binary prints: headline numbers plus a per-step schedule table, all
//! fixed-precision so the bytes are stable.

use crate::event::{DescentEvent, StepRecord};
use crate::{ExpertKind, Phase, ProbeRecord};
use ccq_quant::BitWidth;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::fmt::{self};
use std::path::PathBuf;

/// A failure parsing or decoding a recorded trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayError {
    /// 1-based line of the offending JSONL record (0 = not line-bound).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ReplayError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line > 0 {
            write!(f, "trace line {}: {}", self.line, self.message)
        } else {
            write!(f, "trace: {}", self.message)
        }
    }
}

impl std::error::Error for ReplayError {}

/// Parses a full JSONL event log (one JSON object per non-empty line)
/// back into the event stream that produced it.
///
/// # Errors
///
/// Returns a [`ReplayError`] naming the first malformed line: invalid
/// JSON, an unknown `event` kind, or a missing/mistyped field.
pub fn parse_events(jsonl: &str) -> Result<Vec<DescentEvent>, ReplayError> {
    let mut events = Vec::new();
    for (i, line) in jsonl.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        events.push(parse_event_line(line).map_err(|message| ReplayError {
            line: i + 1,
            message,
        })?);
    }
    Ok(events)
}

/// Parses one JSONL line into its [`DescentEvent`].
///
/// # Errors
///
/// Returns the parse/decode failure message (not line-bound — the caller
/// knows the line number).
pub fn parse_event_line(line: &str) -> Result<DescentEvent, String> {
    let (value, rest) = Json::parse(line)?;
    if !rest.trim().is_empty() {
        return Err("trailing bytes after JSON object".into());
    }
    decode_event(&value)
}

/// A malformed final line a lenient parse tolerated — the signature a
/// live-tailed or crashed-writer log leaves behind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TruncatedTail {
    /// 1-based line number of the malformed tail.
    pub line: usize,
    /// Bytes in the malformed tail.
    pub bytes: usize,
    /// Why the tail failed to parse.
    pub message: String,
}

/// The outcome of [`parse_events_lenient`]: every event from a complete
/// line, plus the truncated tail when one was dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct LenientParse {
    /// Events decoded from complete lines.
    pub events: Vec<DescentEvent>,
    /// The dropped final line, when the log ended mid-record.
    pub truncated_tail: Option<TruncatedTail>,
}

/// [`parse_events`] tolerating a truncated *final* line: a writer killed
/// mid-append (or a reader racing it) tears only the last record, so a
/// malformed final line is reported as a [`TruncatedTail`] rather than an
/// error while the complete prefix still decodes.
///
/// # Errors
///
/// Returns a [`ReplayError`] for a malformed line anywhere *before* the
/// final one — that is corruption, not truncation.
pub fn parse_events_lenient(jsonl: &str) -> Result<LenientParse, ReplayError> {
    let lines: Vec<(usize, &str)> = jsonl
        .lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .collect();
    let mut events = Vec::with_capacity(lines.len());
    let last = lines.len();
    for (k, &(i, line)) in lines.iter().enumerate() {
        match parse_event_line(line) {
            Ok(ev) => events.push(ev),
            Err(message) if k + 1 == last => {
                return Ok(LenientParse {
                    events,
                    truncated_tail: Some(TruncatedTail {
                        line: i + 1,
                        bytes: line.len(),
                        message,
                    }),
                })
            }
            Err(message) => {
                return Err(ReplayError {
                    line: i + 1,
                    message,
                })
            }
        }
    }
    Ok(LenientParse {
        events,
        truncated_tail: None,
    })
}

/// Renders a run's [`crate::ProbeCacheStats`] as one JSON object — the
/// sidecar `ccq-report --probe-cache` reads back. Keys are emitted in a
/// fixed order and the depth histogram is a `skipped → count` object
/// with ascending keys, so identical stats render byte-identically.
pub fn render_probe_cache_stats(stats: &crate::ProbeCacheStats) -> String {
    let mut s = String::new();
    let _ = write!(
        s,
        "{{\"hits\": {}, \"misses\": {}, \"segments_run\": {}, \"segments_total\": {}, \"depth_hist\": {{",
        stats.hits, stats.misses, stats.segments_run, stats.segments_total
    );
    for (i, (skipped, count)) in stats.depth_hist.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "\"{skipped}\": {count}");
    }
    s.push_str("}}\n");
    s
}

/// Parses a probe-cache sidecar written by
/// [`render_probe_cache_stats`] back into the stats, bit-for-bit.
///
/// # Errors
///
/// Returns a [`ReplayError`] (never line-bound — the sidecar is one
/// object) on malformed JSON or a missing/mistyped field.
pub fn parse_probe_cache_stats(json: &str) -> Result<crate::ProbeCacheStats, ReplayError> {
    let at = |message: String| ReplayError { line: 0, message };
    let (v, rest) = Json::parse(json).map_err(at)?;
    if !rest.trim().is_empty() {
        return Err(at("trailing bytes after JSON object".into()));
    }
    let u64_field = |key: &str| -> Result<u64, ReplayError> {
        match v.field(key).map_err(at)? {
            Json::Num(x) if *x >= 0.0 && x.fract().abs() < f64::EPSILON => Ok(*x as u64),
            _ => Err(at(format!("field \"{key}\" is not a non-negative integer"))),
        }
    };
    let mut stats = crate::ProbeCacheStats {
        hits: u64_field("hits")?,
        misses: u64_field("misses")?,
        segments_run: u64_field("segments_run")?,
        segments_total: u64_field("segments_total")?,
        depth_hist: BTreeMap::new(),
    };
    let Json::Object(hist) = v.field("depth_hist").map_err(at)? else {
        return Err(at("field \"depth_hist\" is not an object".into()));
    };
    for (key, count) in hist {
        let skipped: usize = key
            .parse()
            .map_err(|_| at(format!("depth_hist key \"{key}\" is not an integer")))?;
        let Json::Num(c) = count else {
            return Err(at(format!("depth_hist[\"{key}\"] is not a number")));
        };
        stats.depth_hist.insert(skipped, *c as u64);
    }
    Ok(stats)
}

/// Decodes one parsed JSON object into a [`DescentEvent`].
fn decode_event(v: &Json) -> Result<DescentEvent, String> {
    let kind = v.str_field("event")?;
    match kind {
        "phase_started" => Ok(DescentEvent::PhaseStarted {
            phase: parse_phase(v.str_field("phase")?)?,
            step: v.usize_field("step")?,
        }),
        "baseline" => Ok(DescentEvent::Baseline {
            accuracy: v.f32_field("accuracy")?,
            lr: v.f32_field("lr")?,
        }),
        "init_quantize" => Ok(DescentEvent::InitQuantize {
            accuracy: v.f32_field("accuracy")?,
            lr: v.f32_field("lr")?,
        }),
        "probe_round" => {
            let probes = v
                .array_field("probes")?
                .iter()
                .map(|p| {
                    Ok(ProbeRecord {
                        round: p.usize_field("round")?,
                        layer: p.usize_field("layer")?,
                        kind: parse_kind(p.str_field("kind")?)?,
                        val_loss: p.f32_field("val_loss")?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(DescentEvent::ProbeRound {
                step: v.usize_field("step")?,
                round: v.usize_field("round")?,
                probes,
                pi: v.f32_array_field("pi")?,
            })
        }
        "quantize" => Ok(DescentEvent::QuantizeDecision {
            step: v.usize_field("step")?,
            epoch: v.usize_field("epoch")?,
            layer: v.usize_field("layer")?,
            kind: parse_kind(v.str_field("kind")?)?,
            label: v.str_field("label")?.to_string(),
            from_bits: parse_bits(v.str_field("from_bits")?)?,
            to_bits: parse_bits(v.str_field("to_bits")?)?,
            probabilities: v.f32_array_field("probabilities")?,
            valley_accuracy: v.f32_field("valley_accuracy")?,
            lr: v.f32_field("lr")?,
            // Streams written before the searcher abstraction carry no
            // searcher field; only Hedge existed then.
            searcher: match v.field("searcher") {
                Ok(Json::Str(s)) => s.clone(),
                _ => "hedge".to_string(),
            },
        }),
        "recovery_epoch" => Ok(DescentEvent::RecoveryEpoch {
            step: v.usize_field("step")?,
            epoch: v.usize_field("epoch")?,
            train_loss: v.f32_field("train_loss")?,
            val_accuracy: v.f32_field("val_accuracy")?,
            lr: v.f32_field("lr")?,
        }),
        "guard_rollback" => {
            let slot = match v.field("quarantined_slot")? {
                Json::Null => None,
                other => Some(as_usize(other, "quarantined_slot")?),
            };
            Ok(DescentEvent::GuardRollback {
                step: v.usize_field("step")?,
                attempt: v.usize_field("attempt")?,
                discarded_trace_points: v.usize_field("discarded_trace_points")?,
                quarantined_slot: slot,
            })
        }
        "step" => Ok(DescentEvent::StepCompleted {
            record: StepRecord {
                step: v.usize_field("step")?,
                layer: v.usize_field("layer")?,
                kind: parse_kind(v.str_field("kind")?)?,
                label: v.str_field("label")?.to_string(),
                from_bits: parse_bits(v.str_field("from_bits")?)?,
                to_bits: parse_bits(v.str_field("to_bits")?)?,
                accuracy_before: v.f32_field("accuracy_before")?,
                accuracy_after_quant: v.f32_field("accuracy_after_quant")?,
                accuracy_after_recovery: v.f32_field("accuracy_after_recovery")?,
                recovery_epochs: v.usize_field("recovery_epochs")?,
                compression: v.f64_field("compression")?,
                lambda: v.f32_field("lambda")?,
            },
        }),
        "autosave" => Ok(DescentEvent::Autosave {
            next_step: v.usize_field("next_step")?,
            path: PathBuf::from(v.str_field("path")?),
        }),
        "finished" => Ok(DescentEvent::Finished {
            baseline_accuracy: v.f32_field("baseline_accuracy")?,
            final_accuracy: v.f32_field("final_accuracy")?,
            final_compression: v.f64_field("final_compression")?,
            bit_pattern: v.str_field("bit_pattern")?.to_string(),
        }),
        other => Err(format!("unknown event kind \"{other}\"")),
    }
}

fn parse_phase(s: &str) -> Result<Phase, String> {
    match s {
        "init_quantize" => Ok(Phase::InitQuantize),
        "compete" => Ok(Phase::Compete),
        "quantize" => Ok(Phase::Quantize),
        "recover" => Ok(Phase::Recover),
        "checkpoint" => Ok(Phase::Checkpoint),
        "done" => Ok(Phase::Done),
        other => Err(format!("unknown phase \"{other}\"")),
    }
}

fn parse_kind(s: &str) -> Result<ExpertKind, String> {
    match s {
        "layer" => Ok(ExpertKind::Layer),
        "weights" => Ok(ExpertKind::Weights),
        "acts" => Ok(ExpertKind::Activations),
        other => Err(format!("unknown expert kind \"{other}\"")),
    }
}

/// Inverse of [`BitWidth`]'s `Display`: `"fp"` or `"<n>b"` — including
/// the zero-bit searcher's `"0b"` pruning rung.
fn parse_bits(s: &str) -> Result<BitWidth, String> {
    if s == "fp" {
        return Ok(BitWidth::FP32);
    }
    let digits = s.strip_suffix('b').ok_or_else(|| bad_bits(s))?;
    let n: u32 = digits.parse().map_err(|_| bad_bits(s))?;
    BitWidth::new_allowing_zero(n).map_err(|_| bad_bits(s))
}

fn bad_bits(s: &str) -> String {
    format!("invalid bit width \"{s}\" (expected \"fp\" or \"<0..=32>b\")")
}

fn as_usize(v: &Json, field: &str) -> Result<usize, String> {
    match v {
        Json::Num(x) if *x >= 0.0 && x.fract().abs() < f64::EPSILON => Ok(*x as usize),
        _ => Err(format!("field \"{field}\" is not a non-negative integer")),
    }
}

/// Renders a replayed event stream as the human-readable run summary
/// the `ccq-report` binary prints: headline accuracy/compression
/// numbers, event counts, and the per-step schedule table. Output is
/// fixed-precision and byte-stable for a fixed stream.
pub fn render_run_summary(events: &[DescentEvent]) -> String {
    let mut baseline: Option<f32> = None;
    let mut init_acc: Option<f32> = None;
    let mut finished: Option<(f32, f64, String)> = None;
    let mut steps: Vec<&StepRecord> = Vec::new();
    let mut probe_rounds = 0usize;
    let mut probes = 0usize;
    let mut recovery_epochs = 0usize;
    let mut rollbacks = 0usize;
    let mut autosaves = 0usize;
    for ev in events {
        match ev {
            DescentEvent::Baseline { accuracy, .. } => baseline = Some(*accuracy),
            DescentEvent::InitQuantize { accuracy, .. } => init_acc = Some(*accuracy),
            DescentEvent::ProbeRound { probes: p, .. } => {
                probe_rounds += 1;
                probes += p.len();
            }
            DescentEvent::RecoveryEpoch { .. } => recovery_epochs += 1,
            DescentEvent::GuardRollback { .. } => rollbacks += 1,
            DescentEvent::StepCompleted { record } => steps.push(record),
            DescentEvent::Autosave { .. } => autosaves += 1,
            DescentEvent::Finished {
                final_accuracy,
                final_compression,
                bit_pattern,
                ..
            } => finished = Some((*final_accuracy, *final_compression, bit_pattern.clone())),
            DescentEvent::PhaseStarted { .. } | DescentEvent::QuantizeDecision { .. } => {}
        }
    }

    let mut out = String::new();
    out.push_str("CCQ run summary\n===============\n");
    let pct = |v: f32| format!("{:.2}%", 100.0 * v);
    match baseline {
        Some(b) => {
            let _ = writeln!(out, "baseline accuracy     {}", pct(b));
        }
        None => out.push_str("baseline accuracy     (not recorded)\n"),
    }
    if let Some(a) = init_acc {
        let _ = writeln!(out, "after ladder-top init {}", pct(a));
    }
    match &finished {
        Some((acc, comp, pattern)) => {
            let _ = writeln!(out, "final accuracy        {}", pct(*acc));
            if let Some(b) = baseline {
                let _ = writeln!(out, "degradation           {:.2} pts", 100.0 * (b - acc));
            }
            let _ = writeln!(out, "final compression     {comp:.2}x");
            let _ = writeln!(out, "bit pattern           {pattern}");
        }
        None => out.push_str("final accuracy        (run did not finish)\n"),
    }
    let _ = writeln!(out, "quantize steps        {}", steps.len());
    let _ = writeln!(
        out,
        "probe rounds          {probe_rounds} ({probes} probes)"
    );
    let _ = writeln!(out, "recovery epochs       {recovery_epochs}");
    let _ = writeln!(out, "guard rollbacks       {rollbacks}");
    let _ = writeln!(out, "autosaves             {autosaves}");

    if !steps.is_empty() {
        out.push('\n');
        let _ = writeln!(
            out,
            "{:>4}  {:>5}  {:<8}  {:<14}  {:>4} {:>4}  {:>8}  {:>10}  {:>6}  {:>11}",
            "step",
            "layer",
            "kind",
            "label",
            "from",
            "to",
            "valley%",
            "recovered%",
            "epochs",
            "compression"
        );
        for r in steps {
            let kind = match r.kind {
                ExpertKind::Layer => "layer",
                ExpertKind::Weights => "weights",
                ExpertKind::Activations => "acts",
            };
            let _ = writeln!(
                out,
                "{:>4}  {:>5}  {:<8}  {:<14}  {:>4} {:>4}  {:>8.2}  {:>10.2}  {:>6}  {:>10.2}x",
                r.step,
                r.layer,
                kind,
                r.label,
                r.from_bits.to_string(),
                r.to_bits.to_string(),
                100.0 * r.accuracy_after_quant,
                100.0 * r.accuracy_after_recovery,
                r.recovery_epochs,
                r.compression
            );
        }
    }
    out
}

/// Renders a per-searcher decision summary from a replayed event
/// stream: how many quantize decisions each searcher made, with the
/// destination-rung distribution of those decisions. Deterministic
/// ordering (searchers and rungs sorted lexically); the empty string
/// when the stream carries no quantize decisions.
pub fn render_searcher_summary(events: &[DescentEvent]) -> String {
    let mut by_searcher: BTreeMap<&str, BTreeMap<String, usize>> = BTreeMap::new();
    for ev in events {
        if let DescentEvent::QuantizeDecision {
            searcher, to_bits, ..
        } = ev
        {
            *by_searcher
                .entry(searcher.as_str())
                .or_default()
                .entry(to_bits.to_string())
                .or_insert(0) += 1;
        }
    }
    if by_searcher.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    out.push_str("searcher decisions\n==================\n");
    for (name, rungs) in &by_searcher {
        let total: usize = rungs.values().sum();
        let dist = rungs
            .iter()
            .map(|(to, n)| format!("{to}:{n}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(out, "{name:<10} {total:>4} decisions  ({dist})");
    }
    out
}

// ---------------------------------------------------------------------
// A minimal JSON reader, the exact inverse of `event::event_json`.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Json>),
    Object(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON value off the front of `s`, returning the rest.
    fn parse(s: &str) -> Result<(Json, &str), String> {
        let s = s.trim_start();
        let first = s.chars().next().ok_or("unexpected end of input")?;
        match first {
            'n' => s
                .strip_prefix("null")
                .map(|r| (Json::Null, r))
                .ok_or_else(|| "bad literal".into()),
            't' => s
                .strip_prefix("true")
                .map(|r| (Json::Bool(true), r))
                .ok_or_else(|| "bad literal".into()),
            'f' => s
                .strip_prefix("false")
                .map(|r| (Json::Bool(false), r))
                .ok_or_else(|| "bad literal".into()),
            '"' => Self::parse_string(s),
            '[' => {
                let mut rest = trim_expect(s, '[')?;
                let mut items = Vec::new();
                if let Some(r) = rest.trim_start().strip_prefix(']') {
                    return Ok((Json::Array(items), r));
                }
                loop {
                    let (v, r) = Self::parse(rest)?;
                    items.push(v);
                    let r = r.trim_start();
                    if let Some(r) = r.strip_prefix(',') {
                        rest = r;
                    } else if let Some(r) = r.strip_prefix(']') {
                        return Ok((Json::Array(items), r));
                    } else {
                        return Err("expected ',' or ']' in array".into());
                    }
                }
            }
            '{' => {
                let mut rest = trim_expect(s, '{')?;
                let mut map = BTreeMap::new();
                if let Some(r) = rest.trim_start().strip_prefix('}') {
                    return Ok((Json::Object(map), r));
                }
                loop {
                    let (key, r) = Self::parse_string(rest.trim_start())?;
                    let Json::Str(key) = key else {
                        return Err("object key must be a string".into());
                    };
                    let r = r
                        .trim_start()
                        .strip_prefix(':')
                        .ok_or("expected ':' after object key")?;
                    let (v, r) = Self::parse(r)?;
                    map.insert(key, v);
                    let r = r.trim_start();
                    if let Some(r) = r.strip_prefix(',') {
                        rest = r;
                    } else if let Some(r) = r.strip_prefix('}') {
                        return Ok((Json::Object(map), r));
                    } else {
                        return Err("expected ',' or '}' in object".into());
                    }
                }
            }
            c if c == '-' || c.is_ascii_digit() => {
                let end = s
                    .char_indices()
                    .find(|(_, c)| !matches!(c, '0'..='9' | '-' | '+' | '.' | 'e' | 'E'))
                    .map(|(i, _)| i)
                    .unwrap_or(s.len());
                let (num, rest) = s.split_at(end);
                let x: f64 = num.parse().map_err(|_| format!("bad number \"{num}\""))?;
                Ok((Json::Num(x), rest))
            }
            c => Err(format!("unexpected character '{c}'")),
        }
    }

    fn parse_string(s: &str) -> Result<(Json, &str), String> {
        let body = s.strip_prefix('"').ok_or("expected string")?;
        let mut out = String::new();
        let mut chars = body.char_indices();
        while let Some((i, c)) = chars.next() {
            match c {
                '"' => return Ok((Json::Str(out), &body[i + 1..])),
                '\\' => match chars.next().map(|(_, e)| e) {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('/') => out.push('/'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    Some('t') => out.push('\t'),
                    Some('b') => out.push('\u{8}'),
                    Some('f') => out.push('\u{c}'),
                    Some('u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = chars
                                .next()
                                .and_then(|(_, h)| h.to_digit(16))
                                .ok_or("bad \\u escape")?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err("bad escape sequence".into()),
                },
                c => out.push(c),
            }
        }
        Err("unterminated string".into())
    }

    fn field(&self, key: &str) -> Result<&Json, String> {
        match self {
            Json::Object(m) => m.get(key).ok_or_else(|| format!("missing field \"{key}\"")),
            _ => Err(format!("expected object with field \"{key}\"")),
        }
    }

    fn str_field(&self, key: &str) -> Result<&str, String> {
        match self.field(key)? {
            Json::Str(s) => Ok(s),
            _ => Err(format!("field \"{key}\" is not a string")),
        }
    }

    fn usize_field(&self, key: &str) -> Result<usize, String> {
        as_usize(self.field(key)?, key)
    }

    /// Float field; a JSON `null` (the serialization of a non-finite
    /// float) decodes to NaN.
    fn f64_field(&self, key: &str) -> Result<f64, String> {
        match self.field(key)? {
            Json::Num(x) => Ok(*x),
            Json::Null => Ok(f64::NAN),
            _ => Err(format!("field \"{key}\" is not a number")),
        }
    }

    fn f32_field(&self, key: &str) -> Result<f32, String> {
        self.f64_field(key).map(|x| x as f32)
    }

    fn array_field(&self, key: &str) -> Result<&[Json], String> {
        match self.field(key)? {
            Json::Array(v) => Ok(v),
            _ => Err(format!("field \"{key}\" is not an array")),
        }
    }

    fn f32_array_field(&self, key: &str) -> Result<Vec<f32>, String> {
        self.array_field(key)?
            .iter()
            .map(|v| match v {
                Json::Num(x) => Ok(*x as f32),
                Json::Null => Ok(f32::NAN),
                _ => Err(format!("field \"{key}\" holds a non-number")),
            })
            .collect()
    }
}

fn trim_expect(s: &str, c: char) -> Result<&str, String> {
    s.strip_prefix(c).ok_or_else(|| format!("expected '{c}'"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::event_json;

    fn sample_events() -> Vec<DescentEvent> {
        vec![
            DescentEvent::PhaseStarted {
                phase: Phase::Compete,
                step: 1,
            },
            DescentEvent::Baseline {
                accuracy: 0.953_125,
                lr: 0.02,
            },
            DescentEvent::ProbeRound {
                step: 1,
                round: 0,
                probes: vec![ProbeRecord {
                    round: 0,
                    layer: 2,
                    kind: ExpertKind::Layer,
                    val_loss: f32::NAN,
                }],
                pi: vec![1.0, 0.587_342_1],
            },
            DescentEvent::QuantizeDecision {
                step: 1,
                epoch: 3,
                layer: 2,
                kind: ExpertKind::Layer,
                label: "fc,2 \"odd\"\n".into(),
                from_bits: BitWidth::of(8),
                to_bits: BitWidth::of(4),
                probabilities: vec![0.25, 0.75],
                valley_accuracy: 0.701_2,
                lr: 0.02,
                searcher: "hedge".into(),
            },
            DescentEvent::GuardRollback {
                step: 1,
                attempt: 1,
                discarded_trace_points: 3,
                quarantined_slot: Some(4),
            },
            DescentEvent::Finished {
                baseline_accuracy: 0.95,
                final_accuracy: 0.92,
                final_compression: 7.84,
                bit_pattern: "8b-4b".into(),
            },
        ]
    }

    #[test]
    fn parse_is_the_exact_inverse_of_event_json() {
        let events = sample_events();
        let jsonl: String = events
            .iter()
            .map(|e| {
                let mut l = event_json(e);
                l.push('\n');
                l
            })
            .collect();
        let parsed = parse_events(&jsonl).expect("round trip");
        assert_eq!(parsed.len(), events.len());
        for (a, b) in events.iter().zip(&parsed) {
            // NaN != NaN, so compare through the serialized form.
            assert_eq!(event_json(a), event_json(b));
        }
    }

    #[test]
    fn parse_reports_the_failing_line() {
        let err = parse_events("{\"event\":\"baseline\",\"accuracy\":1,\"lr\":1}\nnot json\n")
            .expect_err("bad line");
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unknown_event_kinds_are_rejected() {
        let err = parse_events("{\"event\":\"warp_drive\"}\n").expect_err("unknown kind");
        assert!(err.message.contains("warp_drive"));
    }

    #[test]
    fn lenient_parse_drops_only_a_torn_final_line() {
        // Compare streams by their canonical JSON (NaN-carrying events
        // are not reflexively equal under PartialEq).
        let canon = |evs: &[DescentEvent]| evs.iter().map(event_json).collect::<Vec<_>>();
        let events = sample_events();
        let jsonl: String = events.iter().map(|e| event_json(e) + "\n").collect();

        // A clean log parses with no tail.
        let clean = parse_events_lenient(&jsonl).expect("clean log");
        assert_eq!(canon(&clean.events), canon(&events));
        assert!(clean.truncated_tail.is_none());

        // Tear the final line mid-record: the prefix survives, the tail
        // is reported, and the strict parser rejects the same bytes.
        let torn = &jsonl[..jsonl.len() - 7];
        let parsed = parse_events_lenient(torn).expect("torn tail tolerated");
        assert_eq!(canon(&parsed.events), canon(&events[..events.len() - 1]));
        let tail = parsed.truncated_tail.expect("tail reported");
        assert_eq!(tail.line, events.len());
        assert!(tail.bytes > 0);
        assert!(parse_events(torn).is_err(), "strict parser must reject");

        // A malformed line *before* the end is corruption, not
        // truncation: both parsers reject it at the same line.
        let mut lines: Vec<&str> = jsonl.lines().collect();
        lines[1] = "{\"event\": \"basel";
        let corrupt = lines.join("\n");
        let err = parse_events_lenient(&corrupt).expect_err("mid-log corruption");
        assert_eq!(err.line, 2);
        assert_eq!(parse_events(&corrupt).expect_err("strict").line, 2);
    }

    #[test]
    fn summary_counts_match_the_stream() {
        let s = render_run_summary(&sample_events());
        assert!(s.contains("baseline accuracy     95.31%"));
        assert!(s.contains("probe rounds          1 (1 probes)"));
        assert!(s.contains("guard rollbacks       1"));
        assert!(s.contains("final compression     7.84x"));
    }

    #[test]
    fn bit_widths_round_trip_fp_and_sized() {
        assert_eq!(parse_bits("fp").expect("fp"), BitWidth::FP32);
        assert_eq!(parse_bits("4b").expect("4b"), BitWidth::of(4));
        // The zero-bit searcher's pruning rung is a legal stored width.
        assert_eq!(parse_bits("0b").expect("0b"), BitWidth::ZERO);
        assert!(parse_bits("33b").is_err());
        assert!(parse_bits("4").is_err());
    }

    #[test]
    fn legacy_quantize_lines_without_searcher_parse_as_hedge() {
        let line = "{\"event\":\"quantize\",\"step\":1,\"epoch\":3,\"layer\":2,\
                    \"kind\":\"layer\",\"label\":\"fc2\",\"from_bits\":\"8b\",\
                    \"to_bits\":\"4b\",\"valley_accuracy\":0.7,\"lr\":0.02,\
                    \"probabilities\":[0.25,0.75]}";
        let ev = parse_event_line(line).expect("legacy line");
        let DescentEvent::QuantizeDecision { searcher, .. } = ev else {
            panic!("expected a quantize decision");
        };
        assert_eq!(searcher, "hedge");
    }

    #[test]
    fn searcher_summary_groups_decisions_deterministically() {
        let mut events = sample_events();
        if let DescentEvent::QuantizeDecision { searcher, .. } = &mut events[3] {
            *searcher = "releq".into();
        }
        events.push(events[3].clone());
        if let DescentEvent::QuantizeDecision {
            searcher, to_bits, ..
        } = &mut events[6]
        {
            *searcher = "zero-bit".into();
            *to_bits = BitWidth::ZERO;
        }
        let s = render_searcher_summary(&events);
        assert!(s.starts_with("searcher decisions\n"), "{s}");
        assert!(s.contains("releq"), "{s}");
        assert!(s.contains("zero-bit"), "{s}");
        assert!(s.contains("0b:1"), "{s}");
        assert_eq!(s, render_searcher_summary(&events), "byte-stable");
        assert_eq!(render_searcher_summary(&[]), "");
    }

    #[test]
    fn probe_cache_stats_round_trip_through_the_sidecar() {
        let mut stats = crate::ProbeCacheStats {
            hits: 34,
            misses: 2,
            segments_run: 100,
            segments_total: 180,
            depth_hist: BTreeMap::new(),
        };
        stats.depth_hist.insert(0, 2);
        stats.depth_hist.insert(3, 20);
        stats.depth_hist.insert(7, 14);
        let json = render_probe_cache_stats(&stats);
        let back = parse_probe_cache_stats(&json).expect("round trip");
        assert_eq!(back, stats);
        // Render is deterministic (byte-stable for goldens and diffs).
        assert_eq!(json, render_probe_cache_stats(&back));
        // Malformed sidecars are rejected, not misread.
        assert!(parse_probe_cache_stats("{\"hits\": -1}").is_err());
        assert!(parse_probe_cache_stats("{}").is_err());
        assert!(parse_probe_cache_stats(&format!("{json} trailing")).is_err());
    }
}
