//! The staged descent engine: paper Algorithm 1 as an explicit state
//! machine.
//!
//! ```text
//!               ┌────────────── fresh start
//!               ▼
//!         InitQuantize ──┐            ┌── resume (RunState)
//!                        ▼            ▼
//!               ┌──► Checkpoint ──► Done        (ladder exhausted,
//!               │        │                       compression target,
//!               │        ▼                       or step cap)
//!               │     Compete ──────► Done      (every expert asleep)
//!               │        │
//!               │        ▼
//!               │     Quantize
//!               │        │
//!               │        ▼
//!               └───── Recover ──┐
//!                        ▲       │ guard rollback
//!                        └───────┘ (back to Compete)
//! ```
//!
//! Each [`DescentEngine::step`] call executes exactly one phase and
//! returns a [`StepOutcome`]; [`DescentEngine::run_to_completion`] loops
//! to [`Phase::Done`] and yields the [`CcqReport`]. Every phase narrates
//! itself through an [`EventSink`] (see [`crate::event`]); the engine's
//! internal [`TraceBuffer`] folds the same stream into the legacy
//! trace/step vectors, which keeps the refactored engine bit-identical to
//! the pre-engine monolithic runner (enforced by the `engine_equivalence`
//! golden tests).

#[cfg(feature = "fault-inject")]
use crate::fault::{inject_nan, FaultPlan};
use crate::guard::{capture_velocities, restore_velocities, StepSnapshot};
use crate::run_state::RunState;
use crate::runner::{CcqConfig, CcqReport};
use crate::searcher::Searcher;
use crate::{
    layer_profiles, CcqError, Collaboration, CompetitionOutcome, DescentEvent, EventSink,
    ExpertGranularity, GuardPolicy, ProbeRecord, ProbeRegime, RecoveryRecord, Result, StepRecord,
    TraceBuffer,
};
use ccq_hw::model_size;
use ccq_nn::checkpoint::Checkpoint;
use ccq_nn::schedule::HybridRestart;
use ccq_nn::train::{evaluate, Batch};
use ccq_nn::{Network, Sgd};
use ccq_tensor::{rng, rng_from_state, rng_state, Rng64};

/// The engine's stages, in trajectory order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Measure the fp32 baseline, move every unfrozen layer to the
    /// ladder's top rung, and run the step-0 collaboration (fresh runs
    /// only; resumed runs skip straight to [`Phase::Checkpoint`]).
    InitQuantize,
    /// Run the Hedge competition (probe rounds + λ-blended draw) and
    /// lower the winner one rung. Captures the guard snapshot first.
    Compete,
    /// Measure the post-cut valley and commit the quantize decision to
    /// the trace.
    Quantize,
    /// Collaborative recovery (QAT fine-tuning); on divergence the guard
    /// rolls back to the pre-step snapshot and re-enters
    /// [`Phase::Compete`].
    Recover,
    /// Autosave the run state, then decide: next step, or finish.
    Checkpoint,
    /// The run is complete and the report is ready.
    Done,
}

/// Where a descent starts.
#[derive(Debug, Clone)]
pub enum StartPoint {
    /// A fresh run over a pre-trained full-precision network.
    Fresh,
    /// Continue bit-for-bit from an autosaved [`RunState`] (boxed: a
    /// state carries full network tensors and dwarfs the `Fresh` arm).
    FromRunState(Box<RunState>),
}

/// How a driver steers a descent mid-run — consulted by
/// [`DescentEngine::run_with_control`] before every phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunControl {
    /// Keep stepping.
    Continue,
    /// Finish the quantization step in flight, then stop right after the
    /// next [`Phase::Checkpoint`] executes — the autosave on disk is
    /// current at that instant, so a later resume repeats nothing. The
    /// request latches: once returned it cannot be rescinded.
    Pause,
    /// Abandon the run immediately with [`CcqError::Canceled`]. The last
    /// completed autosave (if any) remains valid; resuming from it
    /// re-runs only the abandoned step.
    Cancel,
}

/// What [`DescentEngine::run_with_control`] produced.
#[derive(Debug)]
pub enum DriveOutcome {
    /// The descent reached [`Phase::Done`] (boxed: a report carries the
    /// full trace and dwarfs the `Paused` arm).
    Finished(Box<CcqReport>),
    /// The driver requested [`RunControl::Pause`] and the engine stopped
    /// at a checkpoint boundary with a fresh autosave on disk.
    Paused {
        /// The quantization step a resumed run will execute next.
        next_step: usize,
    },
}

/// What one [`DescentEngine::step`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepOutcome {
    /// The engine executed `ran` and is now at `next`.
    Advanced {
        /// The phase that just executed.
        ran: Phase,
        /// The phase the next `step()` call will execute.
        next: Phase,
    },
    /// The engine is at [`Phase::Done`]; take the report with
    /// [`DescentEngine::into_report`].
    Finished,
}

/// The mutable state one descent carries between quantization steps —
/// everything a [`RunState`] checkpoint captures and a rollback restores.
struct DescentState {
    r: Rng64,
    opt: Sgd,
    hybrid: HybridRestart,
    collab: Collaboration,
    buf: TraceBuffer,
    epoch: usize,
    baseline: f32,
    last_acc: f32,
    /// The next quantization step `t` to run (1-based).
    next_step: usize,
}

/// A competition outcome awaiting its valley measurement and recovery.
struct PendingStep {
    outcome: CompetitionOutcome,
    valley: f32,
}

/// One staged descent over a network: borrows the runner's configuration
/// and searcher, the network, and the data sources for the duration of
/// the run. Built by [`crate::CcqRunner::engine`].
pub struct DescentEngine<'a> {
    config: &'a CcqConfig,
    searcher: &'a mut dyn Searcher,
    #[cfg(feature = "fault-inject")]
    fault: Option<&'a FaultPlan>,
    net: &'a mut Network,
    train: &'a mut dyn FnMut(&mut Rng64) -> Vec<Batch>,
    val: &'a [Batch],
    probe_val: &'a [Batch],
    sink: &'a mut dyn EventSink,
    st: DescentState,
    phase: Phase,
    /// The quantization step `t` currently in flight (1-based).
    t: usize,
    /// Guard retry attempts consumed for step `t`.
    attempt: usize,
    /// π slots quarantined for step `t` (quarantine policy).
    quarantined: Vec<usize>,
    snap: Option<StepSnapshot>,
    lambda_now: f32,
    pending: Option<PendingStep>,
    /// Compression after the step just completed, checked against the
    /// target at the next [`Phase::Checkpoint`].
    target_check: Option<f64>,
    /// Guard rollbacks taken so far (carried across resume).
    rollbacks: u64,
    report: Option<CcqReport>,
}

impl<'a> DescentEngine<'a> {
    pub(crate) fn new(
        config: &'a CcqConfig,
        searcher: &'a mut dyn Searcher,
        net: &'a mut Network,
        train: &'a mut dyn FnMut(&mut Rng64) -> Vec<Batch>,
        val: &'a [Batch],
        sink: &'a mut dyn EventSink,
        start: StartPoint,
    ) -> Result<Self> {
        if val.is_empty() {
            return Err(CcqError::EmptyValidationSet);
        }
        config.validate()?;
        let collab = if config.use_hybrid_lr {
            Collaboration::new(config.recovery)
        } else {
            Collaboration::new(config.recovery).with_constant_lr()
        };
        let (st, phase, target_check, rollbacks) = match start {
            StartPoint::Fresh => {
                if let Some(t) = &config.targets {
                    let m = net.quant_layer_count();
                    if t.len() != m {
                        return Err(CcqError::InvalidConfig(format!(
                            "{} targets for {m} quantizable layers",
                            t.len()
                        )));
                    }
                }
                let st = DescentState {
                    r: rng(config.seed),
                    opt: Sgd::new(config.lr)
                        .momentum(config.momentum)
                        .weight_decay(config.weight_decay),
                    hybrid: HybridRestart::new(config.lr),
                    collab,
                    buf: TraceBuffer::new(),
                    epoch: 0,
                    baseline: 0.0,
                    last_acc: 0.0,
                    next_step: 1,
                };
                (st, Phase::InitQuantize, None, 0)
            }
            StartPoint::FromRunState(state) => {
                validate_resume(config, &state, net)?;
                state.ckpt.apply(net).map_err(|e| {
                    CcqError::ResumeMismatch(format!("checkpoint does not fit this network: {e}"))
                })?;
                restore_velocities(net, &state.velocities);
                // A pristine state (the autosave after the initial
                // ladder-top recovery, before the first competition)
                // resets the searcher exactly as a fresh run would.
                let slots = expert_slots(config.granularity, net.quant_layer_count());
                searcher.restore(&state.searcher, slots).map_err(|e| {
                    CcqError::ResumeMismatch(format!("saved searcher state rejected: {e}"))
                })?;
                let mut hybrid = HybridRestart::new(state.base_lr);
                hybrid.set_plateau_state(state.plateau);
                let mut opt = Sgd::new(config.lr)
                    .momentum(config.momentum)
                    .weight_decay(config.weight_decay);
                opt.set_lr(state.lr);
                // The autosave this state came from ran *before* the
                // checkpoint's compression-target decision, so that check
                // is still pending on resume. Re-arm it from the last
                // committed step (the exact f64 the interrupted run would
                // have compared) or a kill between the final autosave and
                // `finalize` would resume past its target.
                let pending_target = state.steps.last().map(|s| s.compression);
                let st = DescentState {
                    r: rng_from_state(state.rng),
                    opt,
                    hybrid,
                    collab,
                    buf: TraceBuffer::with_history(state.trace, state.steps),
                    epoch: state.epoch,
                    baseline: state.baseline_accuracy,
                    last_acc: state.last_accuracy,
                    next_step: state.next_step,
                };
                (st, Phase::Checkpoint, pending_target, state.rollbacks)
            }
        };
        let probe_val = if config.probe_val_batches == 0 {
            val
        } else {
            &val[..config.probe_val_batches.min(val.len())]
        };
        Ok(DescentEngine {
            config,
            searcher,
            #[cfg(feature = "fault-inject")]
            fault: None,
            net,
            train,
            val,
            probe_val,
            sink,
            st,
            phase,
            t: 0,
            attempt: 0,
            quarantined: Vec::new(),
            snap: None,
            lambda_now: 0.0,
            pending: None,
            target_check,
            rollbacks,
            report: None,
        })
    }

    /// Arms a fault-injection plan for this run (builder style).
    #[cfg(feature = "fault-inject")]
    pub(crate) fn with_faults(mut self, plan: Option<&'a FaultPlan>) -> Self {
        self.fault = plan;
        self
    }

    /// The phase the next [`DescentEngine::step`] call will execute.
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Forward-work accounting for the searcher's probe evaluations —
    /// see [`crate::ProbeCacheStats`]. Fold it into a
    /// [`crate::MetricsRegistry`] with
    /// [`crate::MetricsRegistry::record_probe_cache`] after the run.
    pub fn probe_cache_stats(&self) -> &crate::ProbeCacheStats {
        self.searcher.cache_stats()
    }

    /// The quantization step `t` currently in flight (0 before the first
    /// [`Phase::Compete`]).
    pub fn current_step(&self) -> usize {
        self.t
    }

    /// The learning-curve points collected so far.
    pub fn trace(&self) -> &[crate::TracePoint] {
        self.st.buf.trace()
    }

    /// The step records collected so far.
    pub fn steps(&self) -> &[StepRecord] {
        self.st.buf.steps()
    }

    /// Executes the current phase and advances the machine.
    ///
    /// # Errors
    ///
    /// Any [`CcqError`] a full run can surface: evaluation failures,
    /// [`CcqError::Diverged`] on an exhausted guard budget, or
    /// [`CcqError::CheckpointIo`] from a failed autosave.
    pub fn step(&mut self) -> Result<StepOutcome> {
        let ran = self.phase;
        if ran != Phase::Done {
            // Narrate the phase boundary first: sinks that time phases
            // (MetricsSink) close the previous span exactly here.
            self.emit(DescentEvent::PhaseStarted {
                phase: ran,
                step: self.t,
            });
        }
        match self.phase {
            Phase::InitQuantize => self.phase_init()?,
            Phase::Compete => self.phase_compete()?,
            Phase::Quantize => self.phase_quantize()?,
            Phase::Recover => self.phase_recover()?,
            Phase::Checkpoint => self.phase_checkpoint()?,
            Phase::Done => return Ok(StepOutcome::Finished),
        }
        Ok(StepOutcome::Advanced {
            ran,
            next: self.phase,
        })
    }

    /// Steps until [`Phase::Done`] and returns the report.
    ///
    /// # Errors
    ///
    /// Same contract as [`DescentEngine::step`].
    pub fn run_to_completion(self) -> Result<CcqReport> {
        match self.run_with_control(&mut |_, _| RunControl::Continue)? {
            DriveOutcome::Finished(report) => Ok(*report),
            DriveOutcome::Paused { .. } => Err(CcqError::EngineInvariant(
                "a never-pausing control cannot pause",
            )),
        }
    }

    /// Steps to completion under a driver's control: `control` is
    /// consulted with the upcoming phase and the step in flight before
    /// every [`DescentEngine::step`] call. [`RunControl::Pause`] latches
    /// and stops the run right after the next [`Phase::Checkpoint`]
    /// executes (autosave current on disk); [`RunControl::Cancel`] aborts
    /// immediately. Control decisions never perturb the trajectory — a
    /// paused-then-resumed run is bit-identical to an uninterrupted one.
    ///
    /// # Errors
    ///
    /// Everything [`DescentEngine::step`] can surface, plus
    /// [`CcqError::Canceled`] when the control requests it.
    pub fn run_with_control(
        mut self,
        control: &mut dyn FnMut(Phase, usize) -> RunControl,
    ) -> Result<DriveOutcome> {
        let mut pause_requested = false;
        while self.phase != Phase::Done {
            match control(self.phase, self.t) {
                RunControl::Continue => {}
                RunControl::Pause => pause_requested = true,
                RunControl::Cancel => return Err(CcqError::Canceled { step: self.t }),
            }
            let ran = self.phase;
            self.step()?;
            if pause_requested && ran == Phase::Checkpoint && self.phase != Phase::Done {
                return Ok(DriveOutcome::Paused {
                    next_step: self.st.next_step,
                });
            }
        }
        let report = self
            .report
            .take()
            .ok_or(CcqError::EngineInvariant("Done implies a finished report"))?;
        Ok(DriveOutcome::Finished(Box::new(report)))
    }

    /// The final report, once the engine reached [`Phase::Done`].
    pub fn into_report(self) -> Option<CcqReport> {
        self.report
    }

    /// Applies an event to the internal trace buffer and the attached
    /// sink, in that order.
    fn emit(&mut self, ev: DescentEvent) {
        self.st.buf.on_event(&ev);
        self.sink.on_event(&ev);
    }

    /// [`Phase::InitQuantize`]: baseline, ladder-top init (Algorithm 1
    /// line 3, honoring full-precision freezes), step-0 collaboration.
    fn phase_init(&mut self) -> Result<()> {
        let baseline = evaluate(self.net, self.val)?.accuracy;
        self.st.baseline = baseline;
        self.emit(DescentEvent::Baseline {
            accuracy: baseline,
            lr: self.config.lr,
        });
        let top = self.config.ladder.top();
        let infos = self.net.quant_layer_info();
        for (m, info) in infos.iter().enumerate() {
            let frozen = self
                .config
                .targets
                .as_ref()
                .map(|t| t[m].is_full_precision())
                .unwrap_or(false);
            if !frozen && info.spec.weight_bits > top {
                self.net.set_quant_spec(m, info.spec.with_bits(top, top));
            }
        }
        let after_init = evaluate(self.net, self.val)?.accuracy;
        self.emit(DescentEvent::InitQuantize {
            accuracy: after_init,
            lr: self.config.lr,
        });
        self.st.last_acc = after_init;
        let rec = self.collaborate(0)?;
        self.st.last_acc = rec.final_accuracy;
        self.phase = Phase::Checkpoint;
        Ok(())
    }

    /// [`Phase::Compete`]: guard snapshot, probe rounds (narrated per
    /// round), then the searcher's draw lowers the winner one rung.
    fn phase_compete(&mut self) -> Result<()> {
        let t = self.t;
        self.lambda_now = self.config.lambda.value(t - 1);
        self.snap = if self.config.guard.is_off() {
            None
        } else {
            Some(StepSnapshot::capture(
                self.net,
                self.searcher.state(),
                &self.st.r,
                &self.st.opt,
                &self.st.hybrid,
                self.st.epoch,
                self.st.buf.trace().len(),
            ))
        };
        let outcome = {
            let DescentState { r, buf, .. } = &mut self.st;
            let sink: &mut dyn EventSink = &mut *self.sink;
            let mut observer = |round: usize, records: &[ProbeRecord], pi: &[f32]| {
                let ev = DescentEvent::ProbeRound {
                    step: t,
                    round,
                    probes: records.to_vec(),
                    pi: pi.to_vec(),
                };
                buf.on_event(&ev);
                sink.on_event(&ev);
            };
            self.searcher.compete(
                self.net,
                &self.config.ladder,
                self.config.targets.as_deref(),
                &self.config.lambda,
                t - 1,
                self.probe_val,
                r,
                &self.quarantined,
                Some(&mut observer),
            )?
        };
        match outcome {
            Some(outcome) => {
                self.pending = Some(PendingStep {
                    outcome,
                    valley: 0.0,
                });
                self.phase = Phase::Quantize;
            }
            // Every expert is asleep: fully quantized.
            None if self.quarantined.is_empty() => self.finalize()?,
            // Only quarantined experts remain: nothing left to draw.
            None => {
                return Err(CcqError::Diverged {
                    step: t,
                    retries: self.attempt,
                })
            }
        }
        Ok(())
    }

    /// [`Phase::Quantize`]: measure the valley and commit the decision to
    /// the trace.
    fn phase_quantize(&mut self) -> Result<()> {
        let valley = evaluate(self.net, self.val)?.accuracy;
        let ev = {
            let pending = self.pending.as_mut().ok_or(CcqError::EngineInvariant(
                "Quantize requires the outcome staged by Compete",
            ))?;
            pending.valley = valley;
            let o = &pending.outcome;
            DescentEvent::QuantizeDecision {
                step: self.t,
                epoch: self.st.epoch,
                layer: o.winner,
                kind: o.winner_kind,
                label: o.winner_label.clone(),
                from_bits: o.from_bits,
                to_bits: o.to_bits,
                probabilities: o.probabilities.clone(),
                valley_accuracy: valley,
                lr: self.st.opt.lr(),
                searcher: self.searcher.label().to_string(),
            }
        };
        self.emit(ev);
        self.phase = Phase::Recover;
        Ok(())
    }

    /// [`Phase::Recover`]: collaboration, health check, and — on
    /// divergence — the guard rollback back into [`Phase::Compete`].
    fn phase_recover(&mut self) -> Result<()> {
        let t = self.t;
        let rec = self.collaborate(t)?;
        let healthy = self.config.guard.is_off()
            || (!rec.diverged && rec.final_accuracy.is_finite() && self.net.all_finite());
        let PendingStep { outcome, valley } = self.pending.take().ok_or(
            CcqError::EngineInvariant("Recover requires the outcome staged by Quantize"),
        )?;
        if healthy {
            self.snap = None;
            let compression = model_size(&layer_profiles(self.net)).compression;
            let record = StepRecord {
                step: t,
                layer: outcome.winner,
                kind: outcome.winner_kind,
                label: outcome.winner_label,
                from_bits: outcome.from_bits,
                to_bits: outcome.to_bits,
                accuracy_before: self.st.last_acc,
                accuracy_after_quant: valley,
                accuracy_after_recovery: rec.final_accuracy,
                recovery_epochs: rec.epochs,
                compression,
                lambda: self.lambda_now,
            };
            self.emit(DescentEvent::StepCompleted { record });
            self.st.last_acc = rec.final_accuracy;
            self.st.next_step = t + 1;
            self.target_check = Some(compression);
            self.phase = Phase::Checkpoint;
            return Ok(());
        }
        // Divergence: roll everything back to the pre-step snapshot and
        // apply the guard policy.
        let snap = self.snap.take().ok_or(CcqError::EngineInvariant(
            "an armed guard implies a pre-step snapshot",
        ))?;
        let discarded = self.st.buf.trace().len() - snap.trace_len;
        self.restore_snapshot(&snap)?;
        self.rollbacks += 1;
        self.attempt += 1;
        if self.attempt > self.config.guard.max_retries() {
            return Err(CcqError::Diverged {
                step: t,
                retries: self.attempt - 1,
            });
        }
        let mut quarantined_slot = None;
        match self.config.guard {
            GuardPolicy::RollbackRetry { lr_factor, .. } => {
                self.st.hybrid.scale_base_lr(lr_factor);
                self.st.opt.set_lr(self.st.hybrid.base_lr());
            }
            GuardPolicy::Quarantine { .. } => {
                self.quarantined.push(outcome.winner_slot);
                quarantined_slot = Some(outcome.winner_slot);
            }
            GuardPolicy::Off => {
                return Err(CcqError::EngineInvariant(
                    "GuardPolicy::Off cannot reach the rollback path",
                ))
            }
        }
        self.emit(DescentEvent::GuardRollback {
            step: t,
            attempt: self.attempt,
            discarded_trace_points: discarded,
            quarantined_slot,
        });
        self.phase = Phase::Compete;
        Ok(())
    }

    /// [`Phase::Checkpoint`]: autosave, then either schedule the next
    /// step or finish (compression target, step cap).
    fn phase_checkpoint(&mut self) -> Result<()> {
        self.autosave()?;
        let completed = self.target_check.take();
        if let (Some(compression), Some(target)) = (completed, self.config.target_compression) {
            if compression >= target {
                return self.finalize();
            }
        }
        if self.st.next_step > self.config.max_steps {
            return self.finalize();
        }
        self.t = self.st.next_step;
        self.attempt = 0;
        self.quarantined.clear();
        self.phase = Phase::Compete;
        Ok(())
    }

    /// Final evaluation and report assembly; transitions to
    /// [`Phase::Done`].
    fn finalize(&mut self) -> Result<()> {
        let final_accuracy = evaluate(self.net, self.val)?.accuracy;
        let final_compression = model_size(&layer_profiles(self.net)).compression;
        let bit_assignment = self
            .net
            .quant_layer_info()
            .into_iter()
            .map(|i| (i.label, i.spec.weight_bits, i.spec.act_bits))
            .collect();
        let report = CcqReport {
            baseline_accuracy: self.st.baseline,
            final_accuracy,
            final_compression,
            steps: self.st.buf.steps().to_vec(),
            trace: self.st.buf.trace().to_vec(),
            bit_assignment,
            rollbacks: self.rollbacks,
        };
        self.emit(DescentEvent::Finished {
            baseline_accuracy: report.baseline_accuracy,
            final_accuracy,
            final_compression,
            bit_pattern: report.bit_pattern(),
        });
        self.report = Some(report);
        self.phase = Phase::Done;
        Ok(())
    }

    /// Restores a pre-step snapshot after a divergent attempt: network
    /// and momentum, searcher state, RNG stream, LR schedule, and the
    /// epoch cursor. The trace retraction travels as the
    /// [`DescentEvent::GuardRollback`] event.
    fn restore_snapshot(&mut self, snap: &StepSnapshot) -> Result<()> {
        snap.restore_network(self.net)?;
        let slots = expert_slots(self.config.granularity, self.net.quant_layer_count());
        self.searcher.restore(&snap.searcher, slots)?;
        self.st.r = rng_from_state(snap.rng);
        let mut hybrid = HybridRestart::new(snap.base_lr);
        hybrid.set_plateau_state(snap.plateau);
        self.st.hybrid = hybrid;
        self.st.opt.set_lr(snap.lr);
        self.st.epoch = snap.epoch;
        Ok(())
    }

    /// One collaboration stage; narrates every recovery epoch and returns
    /// the full [`RecoveryRecord`]. `step` identifies the quantization
    /// step for fault-injection coordinates (0 = the initial
    /// post-ladder-top stage).
    fn collaborate(&mut self, step: usize) -> Result<RecoveryRecord> {
        let train = (self.train)(&mut self.st.r);
        #[cfg(not(feature = "fault-inject"))]
        let _ = step;
        #[cfg(feature = "fault-inject")]
        let rec = if let Some(plan) = self.fault {
            let mut hook = |e: usize, n: &mut Network| {
                if plan.take_nan_grad(step, e) {
                    inject_nan(n);
                }
            };
            self.st.collab.recover_with_hook(
                self.net,
                &train,
                self.val,
                self.st.baseline,
                &mut self.st.opt,
                &mut self.st.hybrid,
                &mut self.st.r,
                Some(&mut hook),
            )?
        } else {
            self.st.collab.recover(
                self.net,
                &train,
                self.val,
                self.st.baseline,
                &mut self.st.opt,
                &mut self.st.hybrid,
                &mut self.st.r,
            )?
        };
        #[cfg(not(feature = "fault-inject"))]
        let rec = self.st.collab.recover(
            self.net,
            &train,
            self.val,
            self.st.baseline,
            &mut self.st.opt,
            &mut self.st.hybrid,
            &mut self.st.r,
        )?;
        for e in &rec.trace {
            self.st.epoch += 1;
            self.emit(DescentEvent::RecoveryEpoch {
                step,
                epoch: self.st.epoch,
                train_loss: e.train_loss,
                val_accuracy: e.val_accuracy,
                lr: e.lr,
            });
        }
        Ok(rec)
    }

    /// Atomically writes the current run state to the configured autosave
    /// path, retrying failed writes up to [`CcqConfig::autosave_retries`]
    /// times. A no-op when autosave is off.
    fn autosave(&mut self) -> Result<()> {
        let Some(path) = self.config.autosave.clone() else {
            return Ok(());
        };
        let state = self.capture_run_state();
        let mut attempts = 0usize;
        loop {
            #[cfg(feature = "fault-inject")]
            let injected = self.fault.is_some_and(|p| p.take_write_failure());
            #[cfg(not(feature = "fault-inject"))]
            let injected = false;
            let result = if injected {
                Err(CcqError::CheckpointIo(format!(
                    "injected write failure for {}",
                    path.display()
                )))
            } else {
                #[cfg(feature = "fault-inject")]
                {
                    state.write_atomic_with_faults(&path, self.fault)
                }
                #[cfg(not(feature = "fault-inject"))]
                {
                    state.write_atomic(&path)
                }
            };
            match result {
                Ok(()) => break,
                Err(_) if attempts < self.config.autosave_retries => attempts += 1,
                Err(e) => return Err(e),
            }
        }
        self.emit(DescentEvent::Autosave {
            next_step: self.st.next_step,
            path,
        });
        Ok(())
    }

    /// Packages the current descent state as a [`RunState`].
    fn capture_run_state(&mut self) -> RunState {
        RunState {
            seed: self.config.seed,
            gamma: self.config.gamma,
            ladder: self
                .config
                .ladder
                .rungs()
                .iter()
                .map(|b| b.bits())
                .collect(),
            granularity_code: granularity_code(self.config.granularity),
            regime_code: regime_code(self.config.probe_regime),
            targets: self
                .config
                .targets
                .as_ref()
                .map(|t| t.iter().map(|b| b.bits()).collect()),
            next_step: self.st.next_step,
            epoch: self.st.epoch,
            baseline_accuracy: self.st.baseline,
            last_accuracy: self.st.last_acc,
            lr: self.st.opt.lr(),
            base_lr: self.st.hybrid.base_lr(),
            rng: rng_state(&self.st.r),
            plateau: self.st.hybrid.plateau_state(),
            searcher: self.searcher.state(),
            rollbacks: self.rollbacks,
            velocities: capture_velocities(self.net),
            ckpt: Checkpoint::capture(self.net),
            trace: self.st.buf.trace().to_vec(),
            steps: self.st.buf.steps().to_vec(),
        }
    }
}

/// π slots for a network at the given granularity.
fn expert_slots(granularity: ExpertGranularity, layers: usize) -> usize {
    match granularity {
        ExpertGranularity::Layer => layers,
        ExpertGranularity::WeightAct => 2 * layers,
    }
}

/// Rejects a [`RunState`] whose configuration fingerprint or network
/// structure does not match this run.
fn validate_resume(config: &CcqConfig, state: &RunState, net: &mut Network) -> Result<()> {
    let mismatch = |msg: String| Err(CcqError::ResumeMismatch(msg));
    if state.seed != config.seed {
        return mismatch(format!(
            "saved seed {} != configured {}",
            state.seed, config.seed
        ));
    }
    if state.gamma.to_bits() != config.gamma.to_bits() {
        return mismatch(format!(
            "saved γ {} != configured {}",
            state.gamma, config.gamma
        ));
    }
    let ladder: Vec<u32> = config.ladder.rungs().iter().map(|b| b.bits()).collect();
    if state.ladder != ladder {
        return mismatch(format!(
            "saved ladder {:?} != configured {ladder:?}",
            state.ladder
        ));
    }
    if state.granularity_code != granularity_code(config.granularity) {
        return mismatch("saved expert granularity differs".into());
    }
    if state.regime_code != regime_code(config.probe_regime) {
        return mismatch("saved probe regime differs".into());
    }
    let targets = config
        .targets
        .as_ref()
        .map(|t| t.iter().map(|b| b.bits()).collect::<Vec<u32>>());
    if state.targets != targets {
        return mismatch("saved per-layer targets differ".into());
    }
    let mut shapes: Vec<Vec<usize>> = Vec::new();
    net.visit_params(&mut |p| shapes.push(p.velocity.shape().to_vec()));
    if shapes.len() != state.velocities.len() {
        return mismatch(format!(
            "saved run has {} momentum buffers, network has {}",
            state.velocities.len(),
            shapes.len()
        ));
    }
    for (i, (s, v)) in shapes.iter().zip(&state.velocities).enumerate() {
        if s != v.shape() {
            return mismatch(format!("momentum buffer {i} shape differs"));
        }
    }
    // Slot-dimension validation happens inside `Searcher::restore`; the
    // fingerprint check here is only that the state was written by the
    // searcher this run is configured for.
    if state.searcher.kind_str() != config.searcher.as_str() {
        return mismatch(format!(
            "saved searcher state is {:?}, this run is configured for {:?}",
            state.searcher.kind_str(),
            config.searcher.as_str()
        ));
    }
    Ok(())
}

pub(crate) fn granularity_code(g: ExpertGranularity) -> u8 {
    match g {
        ExpertGranularity::Layer => 0,
        ExpertGranularity::WeightAct => 1,
    }
}

pub(crate) fn regime_code(r: ProbeRegime) -> u8 {
    match r {
        ProbeRegime::FullInformation => 0,
        ProbeRegime::Sampled => 1,
    }
}
