//! The memory-aggressiveness parameter λ (paper Eq. 7).

use serde::{Deserialize, Serialize};

/// Linear decay schedule for the model-compression weight λ.
///
/// Eq. 7 blends the learned layer-selection distribution with a
/// size-proportional one:
/// `p_new = (1 − λ)·p + λ·|layer| / Σ|layers|`.
/// High λ compresses big layers first; the paper decays λ linearly because
/// early steps recover easily (be size-greedy) while late steps need to be
/// accuracy-driven.
///
/// # Example
///
/// ```
/// use ccq::LambdaSchedule;
///
/// let s = LambdaSchedule::linear(0.8, 0.2, 4);
/// assert_eq!(s.value(0), 0.8);
/// assert!((s.value(4) - 0.2).abs() < 1e-6);
/// assert!((s.average() - 0.5).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LambdaSchedule {
    start: f32,
    end: f32,
    total_steps: usize,
}

impl LambdaSchedule {
    /// A constant λ.
    ///
    /// # Panics
    ///
    /// Panics when `value` is outside `[0, 1]`.
    pub fn constant(value: f32) -> Self {
        LambdaSchedule::linear(value, value, 1)
    }

    /// Linear decay from `start` to `end` over `total_steps` quantization
    /// steps (clamped at `end` afterwards).
    ///
    /// # Panics
    ///
    /// Panics when either endpoint is outside `[0, 1]`.
    pub fn linear(start: f32, end: f32, total_steps: usize) -> Self {
        assert!(
            (0.0..=1.0).contains(&start),
            "lambda start must be in [0, 1]"
        );
        assert!((0.0..=1.0).contains(&end), "lambda end must be in [0, 1]");
        LambdaSchedule {
            start,
            end,
            total_steps: total_steps.max(1),
        }
    }

    /// λ at quantization step `step`.
    pub fn value(&self, step: usize) -> f32 {
        let t = (step as f32 / self.total_steps as f32).min(1.0);
        self.start + (self.end - self.start) * t
    }

    /// The average λ over the schedule (the x-axis of Fig. 1).
    pub fn average(&self) -> f32 {
        0.5 * (self.start + self.end)
    }

    /// Blends a probability vector with the size-proportional distribution
    /// (Eq. 7), restricted to `active` layers, and renormalizes.
    ///
    /// `sizes[i]` is the weight count of layer `i`; inactive layers get
    /// probability zero. Returns a uniform distribution over active layers
    /// when everything degenerates (e.g. all-zero weights).
    ///
    /// # Panics
    ///
    /// Panics when the slice lengths differ.
    pub fn blend(&self, step: usize, p: &[f32], sizes: &[usize], active: &[bool]) -> Vec<f32> {
        assert_eq!(p.len(), sizes.len(), "probability/size length mismatch");
        assert_eq!(p.len(), active.len(), "probability/active length mismatch");
        let lambda = self.value(step);
        let active_size: f32 = sizes
            .iter()
            .zip(active)
            .filter(|&(_, &a)| a)
            .map(|(&s, _)| s as f32)
            .sum();
        let active_p: f32 = p
            .iter()
            .zip(active)
            .filter(|&(_, &a)| a)
            .map(|(&v, _)| v)
            .sum();
        let n_active = active.iter().filter(|&&a| a).count();
        if n_active == 0 {
            return vec![0.0; p.len()];
        }
        let mut out = vec![0.0f32; p.len()];
        for i in 0..p.len() {
            if !active[i] {
                continue;
            }
            let p_norm = if active_p > 0.0 {
                p[i] / active_p
            } else {
                1.0 / n_active as f32
            };
            let s_norm = if active_size > 0.0 {
                sizes[i] as f32 / active_size
            } else {
                1.0 / n_active as f32
            };
            out[i] = (1.0 - lambda) * p_norm + lambda * s_norm;
        }
        // Guard against numeric drift.
        let total: f32 = out.iter().sum();
        if total > 0.0 {
            for v in &mut out {
                *v /= total;
            }
        }
        out
    }
}

impl Default for LambdaSchedule {
    /// The paper's best-performing neighbourhood: average λ ≈ 0.65,
    /// decaying linearly (Fig. 1).
    fn default() -> Self {
        LambdaSchedule::linear(0.9, 0.4, 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_decay_endpoints() {
        let s = LambdaSchedule::linear(1.0, 0.0, 10);
        assert_eq!(s.value(0), 1.0);
        assert_eq!(s.value(10), 0.0);
        assert_eq!(s.value(99), 0.0);
        assert!((s.value(5) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn constant_never_moves() {
        let s = LambdaSchedule::constant(0.3);
        assert_eq!(s.value(0), 0.3);
        assert_eq!(s.value(1000), 0.3);
        assert_eq!(s.average(), 0.3);
    }

    #[test]
    #[should_panic(expected = "lambda")]
    fn rejects_out_of_range() {
        let _ = LambdaSchedule::constant(1.5);
    }

    #[test]
    fn blend_zero_lambda_is_pure_p() {
        let s = LambdaSchedule::constant(0.0);
        let out = s.blend(0, &[0.7, 0.3], &[1, 999], &[true, true]);
        assert!((out[0] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn blend_full_lambda_is_pure_size() {
        let s = LambdaSchedule::constant(1.0);
        let out = s.blend(0, &[0.9, 0.1], &[100, 300], &[true, true]);
        assert!((out[0] - 0.25).abs() < 1e-6);
        assert!((out[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn blend_masks_inactive_layers() {
        let s = LambdaSchedule::constant(0.5);
        let out = s.blend(0, &[0.5, 0.3, 0.2], &[10, 10, 10], &[true, false, true]);
        assert_eq!(out[1], 0.0);
        let total: f32 = out.iter().sum();
        assert!((total - 1.0).abs() < 1e-5);
    }

    #[test]
    fn blend_all_inactive_is_zero_vector() {
        let s = LambdaSchedule::constant(0.5);
        let out = s.blend(0, &[1.0], &[10], &[false]);
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn blend_is_a_distribution() {
        let s = LambdaSchedule::linear(0.8, 0.1, 5);
        for step in 0..6 {
            let out = s.blend(step, &[0.2, 0.5, 0.3], &[5, 50, 500], &[true, true, true]);
            let total: f32 = out.iter().sum();
            assert!((total - 1.0).abs() < 1e-5, "step {step}");
            assert!(out.iter().all(|&v| v >= 0.0));
        }
    }
}
