//! The pluggable search strategy behind the Compete phase.
//!
//! The paper's Hedge competition is one point in a design space: ReLeQ
//! shows the layer/bit decision can be a learned RL policy, Bayesian
//! Bits shows a 0-bit rung unifies quantization with pruning, and DNQ's
//! one-shot sensitivity ordering is the cheap baseline. A [`Searcher`]
//! owns exactly that decision — *which layer, which bit next* — while
//! the probe, recovery, and guard machinery around it stays unchanged:
//! every implementation measures ξ through [`Competition`]'s probe path
//! (cache-aware, bit-identical, thread-count independent) and hands the
//! engine the same [`CompetitionOutcome`] shape.
//!
//! Searchers are selected by [`SearcherKind`] in
//! [`crate::CcqConfig::searcher`] and serialize their mutable state as a
//! tagged [`SearcherState`] inside the [`crate::RunState`], so resume
//! and guard rollback work identically for all of them. The default
//! [`HedgeSearcher`] delegates verbatim to [`Competition`] — a run
//! configured with it is bit-identical to the pre-trait engine.

use crate::competition::{sample_categorical, Expert, ProbeObserver};
use crate::runner::CcqConfig;
use crate::{
    CcqError, Competition, CompetitionOutcome, LambdaSchedule, ProbeCacheStats, ProbeRecord, Result,
};
use ccq_nn::cache::ActivationCache;
use ccq_nn::train::Batch;
use ccq_nn::Network;
use ccq_quant::{BitLadder, BitWidth};
use ccq_tensor::Rng64;
use std::fmt;

/// Which search strategy drives the Compete phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SearcherKind {
    /// The paper's multiplicative-weights competition (the default).
    #[default]
    Hedge,
    /// Hedge over a ladder extended with the Bayesian-Bits 0-bit rung:
    /// layers can compete their way past the floor into *pruned*.
    ZeroBit,
    /// ReLeQ-style policy gradient: a softmax policy over layer×bit
    /// actions trained with ξ as the (negated) reward.
    ReleqRl,
    /// DNQ-style one-shot allocator: probe every expert once, then walk
    /// the fixed sensitivity ordering. The cheap baseline.
    OneShot,
}

impl SearcherKind {
    /// The stable spelling used in job specs, events, and reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            SearcherKind::Hedge => "hedge",
            SearcherKind::ZeroBit => "zero-bit",
            SearcherKind::ReleqRl => "releq",
            SearcherKind::OneShot => "one-shot",
        }
    }

    /// Parses the spelling produced by [`SearcherKind::as_str`].
    ///
    /// # Errors
    ///
    /// Returns [`CcqError::InvalidConfig`] naming the unknown value and
    /// the accepted spellings.
    pub fn parse(s: &str) -> Result<Self> {
        match s {
            "hedge" => Ok(SearcherKind::Hedge),
            "zero-bit" => Ok(SearcherKind::ZeroBit),
            "releq" => Ok(SearcherKind::ReleqRl),
            "one-shot" => Ok(SearcherKind::OneShot),
            other => Err(CcqError::InvalidConfig(format!(
                "unknown searcher {other:?} (expected hedge, zero-bit, releq, or one-shot)"
            ))),
        }
    }

    /// Builds the searcher this kind names, configured from `config`
    /// (γ, probe rounds, regime, granularity, ladder).
    pub fn build(&self, config: &CcqConfig) -> Box<dyn Searcher> {
        let comp = || {
            Competition::new(config.gamma, config.probe_rounds)
                .regime(config.probe_regime)
                .granularity(config.granularity)
        };
        match self {
            SearcherKind::Hedge => Box::new(HedgeSearcher::new(comp())),
            SearcherKind::ZeroBit => Box::new(ZeroBitSearcher::new(comp())),
            SearcherKind::ReleqRl => Box::new(ReleqSearcher::new(
                comp(),
                config.gamma,
                config.probe_rounds,
                config.ladder.len(),
            )),
            SearcherKind::OneShot => Box::new(OneShotSearcher::new(comp())),
        }
    }
}

impl fmt::Display for SearcherKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A searcher's serializable mutable state — the tagged section a
/// [`crate::RunState`] carries and a guard snapshot restores. Empty
/// vectors mean *pristine*: the searcher has not competed yet and
/// re-initializes exactly as a fresh run would.
#[derive(Debug, Clone, PartialEq)]
pub enum SearcherState {
    /// Hedge expert weights π.
    Hedge {
        /// π, one weight per slot (empty before the first competition).
        pi: Vec<f32>,
    },
    /// Hedge weights π of the 0-bit-rung variant.
    ZeroBit {
        /// π, one weight per slot (empty before the first competition).
        pi: Vec<f32>,
    },
    /// ReLeQ policy parameters.
    ReleqRl {
        /// Logits θ, `slots × rungs` row-major (empty before the first
        /// competition).
        theta: Vec<f32>,
        /// The EMA reward baseline.
        baseline: f32,
        /// Policy-gradient updates applied so far.
        updates: u64,
    },
    /// One-shot allocator ordering.
    OneShot {
        /// Slots in ascending-sensitivity order (empty before the
        /// measurement pass).
        order: Vec<usize>,
        /// Measured per-slot probe losses (∞ for slots asleep at
        /// measurement time).
        sensitivities: Vec<f32>,
    },
}

impl SearcherState {
    /// The spelling of this state's searcher kind, for diagnostics.
    pub fn kind_str(&self) -> &'static str {
        match self {
            SearcherState::Hedge { .. } => "hedge",
            SearcherState::ZeroBit { .. } => "zero-bit",
            SearcherState::ReleqRl { .. } => "releq",
            SearcherState::OneShot { .. } => "one-shot",
        }
    }
}

/// A pluggable Compete-phase strategy: propose probes, observe the ξ
/// signals, decide the quantize action, and serialize/restore its own
/// state. Implementations must be deterministic — all randomness flows
/// through the `rng` handed to [`Searcher::compete`], and no
/// iteration-order-unstable containers (`HashMap`) or wall-clock reads
/// (`Instant`) are permitted.
pub trait Searcher: fmt::Debug + Send {
    /// The stable label carried by events, metrics, and reports.
    fn label(&self) -> &'static str;

    /// Runs one competition: decide which layer descends a rung and
    /// apply the move, returning `None` when every expert is asleep.
    /// The observer (when present) is called after each probe round with
    /// `(round, round_probes, weights)`.
    ///
    /// # Errors
    ///
    /// Returns [`CcqError::EmptyValidationSet`] when `val` is empty, or
    /// a network error from the probe evaluations.
    #[allow(clippy::too_many_arguments)]
    fn compete(
        &mut self,
        net: &mut Network,
        ladder: &BitLadder,
        targets: Option<&[BitWidth]>,
        lambda: &LambdaSchedule,
        step: usize,
        val: &[Batch],
        rng: &mut Rng64,
        quarantined: &[usize],
        observer: Option<&mut ProbeObserver>,
    ) -> Result<Option<CompetitionOutcome>>;

    /// The current per-slot selection weights (empty before the first
    /// competition). For Hedge this is π; for the RL searcher the last
    /// policy distribution; for the one-shot allocator a one-hot of the
    /// last pick.
    fn expert_weights(&self) -> &[f32];

    /// Snapshots the searcher's mutable state for checkpoints and guard
    /// rollback.
    fn state(&self) -> SearcherState;

    /// Restores a snapshot taken by [`Searcher::state`]. A pristine
    /// state resets the searcher; `expected_slots` validates the slot
    /// dimension.
    ///
    /// # Errors
    ///
    /// Returns [`CcqError::InvalidConfig`] when the state's tag belongs
    /// to a different searcher, its dimensions do not match
    /// `expected_slots`, or it contains non-finite weights.
    fn restore(&mut self, state: &SearcherState, expected_slots: usize) -> Result<()>;

    /// Discards all learned state (fresh-run initialization).
    fn reset(&mut self);

    /// Forward-work accounting for this searcher's probe evaluations.
    fn cache_stats(&self) -> &ProbeCacheStats;
}

/// The error a [`Searcher::restore`] raises on a cross-searcher state.
fn tag_mismatch(state: &SearcherState, label: &str) -> CcqError {
    CcqError::InvalidConfig(format!(
        "saved searcher state is {:?}, this run is configured for {label:?}",
        state.kind_str()
    ))
}

// ---------------------------------------------------------------------
// Hedge (the default, bit-identical to the pre-trait engine)
// ---------------------------------------------------------------------

/// The paper's Hedge competition behind the [`Searcher`] contract.
/// A thin delegation layer: the trajectory is bit-identical to driving
/// [`Competition`] directly.
#[derive(Debug)]
pub struct HedgeSearcher {
    comp: Competition,
}

impl HedgeSearcher {
    /// Wraps a configured competition.
    pub fn new(comp: Competition) -> Self {
        HedgeSearcher { comp }
    }
}

impl Searcher for HedgeSearcher {
    fn label(&self) -> &'static str {
        "hedge"
    }

    fn compete(
        &mut self,
        net: &mut Network,
        ladder: &BitLadder,
        targets: Option<&[BitWidth]>,
        lambda: &LambdaSchedule,
        step: usize,
        val: &[Batch],
        rng: &mut Rng64,
        quarantined: &[usize],
        observer: Option<&mut ProbeObserver>,
    ) -> Result<Option<CompetitionOutcome>> {
        self.comp.run_observed(
            net,
            ladder,
            targets,
            lambda,
            step,
            val,
            rng,
            quarantined,
            observer,
        )
    }

    fn expert_weights(&self) -> &[f32] {
        self.comp.expert_weights()
    }

    fn state(&self) -> SearcherState {
        SearcherState::Hedge {
            pi: self.comp.expert_weights().to_vec(),
        }
    }

    fn restore(&mut self, state: &SearcherState, expected_slots: usize) -> Result<()> {
        let SearcherState::Hedge { pi } = state else {
            return Err(tag_mismatch(state, self.label()));
        };
        if pi.is_empty() {
            self.comp.reset();
            return Ok(());
        }
        self.comp.set_expert_weights(pi.clone(), expected_slots)
    }

    fn reset(&mut self) {
        self.comp.reset();
    }

    fn cache_stats(&self) -> &ProbeCacheStats {
        self.comp.cache_stats()
    }
}

// ---------------------------------------------------------------------
// Zero-bit rung (Bayesian-Bits-inspired pruning extension)
// ---------------------------------------------------------------------

/// Hedge over the configured ladder extended with the 0-bit pruning
/// rung ([`BitLadder::with_zero_rung`]): a layer at the floor stays an
/// awake expert with one move left — to *pruned* — so channel pruning
/// falls out of the same competition that assigns bit widths.
#[derive(Debug)]
pub struct ZeroBitSearcher {
    comp: Competition,
}

impl ZeroBitSearcher {
    /// Wraps a configured competition.
    pub fn new(comp: Competition) -> Self {
        ZeroBitSearcher { comp }
    }
}

impl Searcher for ZeroBitSearcher {
    fn label(&self) -> &'static str {
        "zero-bit"
    }

    fn compete(
        &mut self,
        net: &mut Network,
        ladder: &BitLadder,
        targets: Option<&[BitWidth]>,
        lambda: &LambdaSchedule,
        step: usize,
        val: &[Batch],
        rng: &mut Rng64,
        quarantined: &[usize],
        observer: Option<&mut ProbeObserver>,
    ) -> Result<Option<CompetitionOutcome>> {
        let ladder = ladder.with_zero_rung();
        self.comp.run_observed(
            net,
            &ladder,
            targets,
            lambda,
            step,
            val,
            rng,
            quarantined,
            observer,
        )
    }

    fn expert_weights(&self) -> &[f32] {
        self.comp.expert_weights()
    }

    fn state(&self) -> SearcherState {
        SearcherState::ZeroBit {
            pi: self.comp.expert_weights().to_vec(),
        }
    }

    fn restore(&mut self, state: &SearcherState, expected_slots: usize) -> Result<()> {
        let SearcherState::ZeroBit { pi } = state else {
            return Err(tag_mismatch(state, self.label()));
        };
        if pi.is_empty() {
            self.comp.reset();
            return Ok(());
        }
        self.comp.set_expert_weights(pi.clone(), expected_slots)
    }

    fn reset(&mut self) {
        self.comp.reset();
    }

    fn cache_stats(&self) -> &ProbeCacheStats {
        self.comp.cache_stats()
    }
}

// ---------------------------------------------------------------------
// ReLeQ-style policy gradient
// ---------------------------------------------------------------------

/// A softmax policy over layer×bit actions trained by full-information
/// policy gradient with ξ as the negated reward (ReLeQ's shaping,
/// without the paper's LSTM): each probe round probes every awake
/// expert through the shared cache-aware probe path, then applies
/// `θ[a_i] += α·p_i·(r_i − Σ_j p_j r_j)` with an EMA baseline absorbing
/// reward scale. The final draw samples the updated policy directly —
/// no λ blend, the size prior is the Hedge family's device.
#[derive(Debug)]
pub struct ReleqSearcher {
    comp: Competition,
    alpha: f32,
    rounds: usize,
    /// Rung count the θ table is dimensioned for (the configured
    /// ladder's length; off-ladder targets clamp to the last rung).
    n_rungs: usize,
    /// Logits, `slots × n_rungs` row-major (empty before first use).
    theta: Vec<f32>,
    baseline: f32,
    updates: u64,
    /// The last slot-level policy distribution (for observability).
    probabilities: Vec<f32>,
}

impl ReleqSearcher {
    /// Wraps a configured competition (probe machinery + stats) with a
    /// policy learning rate `alpha` and `rounds` probe rounds per step
    /// (0 = two rounds, matching the Hedge default).
    pub fn new(comp: Competition, alpha: f32, rounds: usize, ladder_rungs: usize) -> Self {
        ReleqSearcher {
            comp,
            alpha,
            rounds,
            n_rungs: ladder_rungs.max(1),
            theta: Vec::new(),
            baseline: 0.0,
            updates: 0,
            probabilities: Vec::new(),
        }
    }

    /// The θ index of an expert's action (slot × destination rung).
    fn action_index(&self, e: &Expert, ladder: &BitLadder) -> usize {
        let rung = ladder
            .level_of(e.to)
            .unwrap_or(self.n_rungs - 1)
            .min(self.n_rungs - 1);
        e.slot * self.n_rungs + rung
    }

    /// The softmax policy over the awake experts (expert order).
    fn policy(&self, experts: &[Expert], ladder: &BitLadder) -> Vec<f32> {
        let logits: Vec<f32> = experts
            .iter()
            .map(|e| self.theta[self.action_index(e, ladder)])
            .collect();
        let max = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f32> = logits.iter().map(|l| (l - max).exp()).collect();
        let sum: f32 = exps.iter().sum();
        exps.iter().map(|&x| x / sum).collect()
    }
}

impl Searcher for ReleqSearcher {
    fn label(&self) -> &'static str {
        "releq"
    }

    fn compete(
        &mut self,
        net: &mut Network,
        ladder: &BitLadder,
        targets: Option<&[BitWidth]>,
        _lambda: &LambdaSchedule,
        _step: usize,
        val: &[Batch],
        rng: &mut Rng64,
        quarantined: &[usize],
        mut observer: Option<&mut ProbeObserver>,
    ) -> Result<Option<CompetitionOutcome>> {
        if val.is_empty() {
            return Err(CcqError::EmptyValidationSet);
        }
        let info = net.quant_layer_info();
        let (experts, slots) = self.comp.experts(net, ladder, targets, quarantined);
        if self.theta.len() != slots * self.n_rungs {
            self.theta = vec![0.0; slots * self.n_rungs];
        }
        if experts.is_empty() {
            return Ok(None);
        }
        let cache = if self.comp.is_incremental() {
            Some(ActivationCache::fill(net, val).map_err(CcqError::from)?)
        } else {
            None
        };
        let segments = cache
            .as_ref()
            .map_or_else(|| net.segment_count(), ActivationCache::segments);
        let mut by_slot: Vec<Option<usize>> = vec![None; slots];
        for (i, e) in experts.iter().enumerate() {
            by_slot[e.slot] = Some(i);
        }
        let rounds = if self.rounds == 0 { 2 } else { self.rounds };

        let mut probes = Vec::with_capacity(rounds * experts.len());
        let mut skipped_probes = 0usize;
        for u in 0..rounds {
            let round_start = probes.len();
            let p = self.policy(&experts, ladder);
            let losses = Competition::probe_round(net, &experts, val, cache.as_ref())?;
            let mut rewards = Vec::with_capacity(experts.len());
            let mut finite_sum = 0.0f32;
            let mut finite_n = 0usize;
            for (e, &loss) in experts.iter().zip(&losses) {
                let saved = cache.as_ref().map_or(0, |c| c.segment_of(e.layer));
                self.comp.stats_mut().record(saved, segments);
                // A non-finite ξ would poison θ permanently; substitute
                // the baseline (zero advantage) and count the skip.
                if loss.is_finite() {
                    rewards.push(-loss);
                    finite_sum += -loss;
                    finite_n += 1;
                } else {
                    rewards.push(self.baseline);
                    skipped_probes += 1;
                }
                probes.push(ProbeRecord {
                    round: u,
                    layer: e.layer,
                    kind: e.kind,
                    val_loss: loss,
                });
            }
            let rbar: f32 = p.iter().zip(&rewards).map(|(&pi, &r)| pi * r).sum();
            for (i, e) in experts.iter().enumerate() {
                let idx = self.action_index(e, ladder);
                self.theta[idx] += self.alpha * p[i] * (rewards[i] - rbar);
            }
            if finite_n > 0 {
                self.baseline = 0.9 * self.baseline + 0.1 * (finite_sum / finite_n as f32);
            }
            self.updates += 1;
            if let Some(obs) = observer.as_deref_mut() {
                let p_after = self.policy(&experts, ladder);
                let mut q = vec![0.0f32; slots];
                for (i, e) in experts.iter().enumerate() {
                    q[e.slot] = p_after[i];
                }
                obs(u, &probes[round_start..], &q);
            }
        }

        let p = self.policy(&experts, ladder);
        let mut q = vec![0.0f32; slots];
        for (i, e) in experts.iter().enumerate() {
            q[e.slot] = p[i];
        }
        let slot = sample_categorical(&q, rng)
            .ok_or_else(|| CcqError::InvalidConfig("degenerate policy distribution".into()))?;
        // ccq-lint: allow(panic-surface) — the policy assigns zero mass to inactive slots, so a draw is always active
        let winner = experts[by_slot[slot].expect("drawn slot is active")];
        let _ = Competition::apply(net, &winner);
        self.probabilities = q.clone();
        Ok(Some(CompetitionOutcome {
            winner: winner.layer,
            winner_kind: winner.kind,
            winner_slot: winner.slot,
            winner_label: info[winner.layer].label.clone(),
            from_bits: winner.from,
            to_bits: winner.to,
            probabilities: q,
            probes,
            skipped_probes,
        }))
    }

    fn expert_weights(&self) -> &[f32] {
        &self.probabilities
    }

    fn state(&self) -> SearcherState {
        SearcherState::ReleqRl {
            theta: self.theta.clone(),
            baseline: self.baseline,
            updates: self.updates,
        }
    }

    fn restore(&mut self, state: &SearcherState, expected_slots: usize) -> Result<()> {
        let SearcherState::ReleqRl {
            theta,
            baseline,
            updates,
        } = state
        else {
            return Err(tag_mismatch(state, self.label()));
        };
        if theta.is_empty() {
            self.reset();
            return Ok(());
        }
        let expected = expected_slots * self.n_rungs;
        if theta.len() != expected {
            return Err(CcqError::InvalidConfig(format!(
                "saved θ has {} entries, this searcher needs {expected} ({expected_slots} slots × {} rungs)",
                theta.len(),
                self.n_rungs
            )));
        }
        if let Some(i) = theta.iter().position(|w| !w.is_finite()) {
            return Err(CcqError::InvalidConfig(format!(
                "saved θ entry {i} is non-finite ({})",
                theta[i]
            )));
        }
        if !baseline.is_finite() {
            return Err(CcqError::InvalidConfig(format!(
                "saved reward baseline is non-finite ({baseline})"
            )));
        }
        self.theta = theta.clone();
        self.baseline = *baseline;
        self.updates = *updates;
        self.probabilities.clear();
        Ok(())
    }

    fn reset(&mut self) {
        self.theta.clear();
        self.baseline = 0.0;
        self.updates = 0;
        self.probabilities.clear();
    }

    fn cache_stats(&self) -> &ProbeCacheStats {
        self.comp.cache_stats()
    }
}

// ---------------------------------------------------------------------
// DNQ-style one-shot allocator
// ---------------------------------------------------------------------

/// The cheap baseline: probe every expert exactly once on the first
/// competition, sort slots by that measured sensitivity (ascending —
/// least-damaging first), and thereafter walk the fixed order without
/// probing again. Search cost is one probe round total, against Hedge's
/// rounds-per-step; the price is a schedule that never adapts to how
/// the network changes as it quantizes.
#[derive(Debug)]
pub struct OneShotSearcher {
    comp: Competition,
    /// Slots in ascending-sensitivity order (empty until measured).
    order: Vec<usize>,
    /// Measured per-slot probe loss (∞ for slots asleep at measurement).
    sensitivities: Vec<f32>,
    /// One-hot of the last pick (for observability).
    probabilities: Vec<f32>,
}

impl OneShotSearcher {
    /// Wraps a configured competition (probe machinery + stats).
    pub fn new(comp: Competition) -> Self {
        OneShotSearcher {
            comp,
            order: Vec::new(),
            sensitivities: Vec::new(),
            probabilities: Vec::new(),
        }
    }
}

impl Searcher for OneShotSearcher {
    fn label(&self) -> &'static str {
        "one-shot"
    }

    fn compete(
        &mut self,
        net: &mut Network,
        ladder: &BitLadder,
        targets: Option<&[BitWidth]>,
        _lambda: &LambdaSchedule,
        _step: usize,
        val: &[Batch],
        _rng: &mut Rng64,
        quarantined: &[usize],
        observer: Option<&mut ProbeObserver>,
    ) -> Result<Option<CompetitionOutcome>> {
        if val.is_empty() {
            return Err(CcqError::EmptyValidationSet);
        }
        let info = net.quant_layer_info();
        let (experts, slots) = self.comp.experts(net, ladder, targets, quarantined);
        if experts.is_empty() {
            return Ok(None);
        }
        let mut by_slot: Vec<Option<usize>> = vec![None; slots];
        for (i, e) in experts.iter().enumerate() {
            by_slot[e.slot] = Some(i);
        }
        let mut probes = Vec::new();
        let mut skipped_probes = 0usize;
        if self.order.len() != slots {
            // The one measurement pass: every awake expert probed once.
            let cache = if self.comp.is_incremental() {
                Some(ActivationCache::fill(net, val).map_err(CcqError::from)?)
            } else {
                None
            };
            let segments = cache
                .as_ref()
                .map_or_else(|| net.segment_count(), ActivationCache::segments);
            let losses = Competition::probe_round(net, &experts, val, cache.as_ref())?;
            self.sensitivities = vec![f32::INFINITY; slots];
            for (e, &loss) in experts.iter().zip(&losses) {
                let saved = cache.as_ref().map_or(0, |c| c.segment_of(e.layer));
                self.comp.stats_mut().record(saved, segments);
                if loss.is_finite() {
                    self.sensitivities[e.slot] = loss;
                } else {
                    skipped_probes += 1;
                }
                probes.push(ProbeRecord {
                    round: 0,
                    layer: e.layer,
                    kind: e.kind,
                    val_loss: loss,
                });
            }
            let mut order: Vec<usize> = (0..slots).collect();
            order.sort_by(|&a, &b| {
                self.sensitivities[a]
                    .total_cmp(&self.sensitivities[b])
                    .then(a.cmp(&b))
            });
            self.order = order;
        }
        let slot = self
            .order
            .iter()
            .copied()
            .find(|&s| by_slot[s].is_some())
            .ok_or(CcqError::EngineInvariant(
                "an awake expert always appears in the one-shot order",
            ))?;
        // ccq-lint: allow(panic-surface) — the chosen slot was filtered on by_slot membership above
        let winner = experts[by_slot[slot].expect("chosen slot is active")];
        let mut onehot = vec![0.0f32; slots];
        onehot[slot] = 1.0;
        if !probes.is_empty() {
            if let Some(obs) = observer {
                obs(0, &probes, &onehot);
            }
        }
        let _ = Competition::apply(net, &winner);
        self.probabilities = onehot.clone();
        Ok(Some(CompetitionOutcome {
            winner: winner.layer,
            winner_kind: winner.kind,
            winner_slot: winner.slot,
            winner_label: info[winner.layer].label.clone(),
            from_bits: winner.from,
            to_bits: winner.to,
            probabilities: onehot,
            probes,
            skipped_probes,
        }))
    }

    fn expert_weights(&self) -> &[f32] {
        &self.probabilities
    }

    fn state(&self) -> SearcherState {
        SearcherState::OneShot {
            order: self.order.clone(),
            sensitivities: self.sensitivities.clone(),
        }
    }

    fn restore(&mut self, state: &SearcherState, expected_slots: usize) -> Result<()> {
        let SearcherState::OneShot {
            order,
            sensitivities,
        } = state
        else {
            return Err(tag_mismatch(state, self.label()));
        };
        if order.is_empty() {
            self.reset();
            return Ok(());
        }
        if order.len() != expected_slots || sensitivities.len() != expected_slots {
            return Err(CcqError::InvalidConfig(format!(
                "saved one-shot order covers {} slots, this run needs {expected_slots}",
                order.len()
            )));
        }
        if order.iter().any(|&s| s >= expected_slots) {
            return Err(CcqError::InvalidConfig(
                "saved one-shot order names an out-of-range slot".into(),
            ));
        }
        self.order = order.clone();
        self.sensitivities = sensitivities.clone();
        self.probabilities.clear();
        Ok(())
    }

    fn reset(&mut self) {
        self.order.clear();
        self.sensitivities.clear();
        self.probabilities.clear();
    }

    fn cache_stats(&self) -> &ProbeCacheStats {
        self.comp.cache_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccq_data::{gaussian_blobs, BlobsConfig};
    use ccq_models::mlp;
    use ccq_quant::PolicyKind;
    use ccq_tensor::rng;

    fn setup() -> (Network, Vec<Batch>) {
        let net = mlp(&[8, 16, 16, 4], PolicyKind::Pact, 3);
        let val = gaussian_blobs(&BlobsConfig::default()).batches(32);
        (net, val)
    }

    fn comp() -> Competition {
        Competition::new(0.5, 2)
    }

    #[test]
    fn kind_spellings_round_trip() {
        for kind in [
            SearcherKind::Hedge,
            SearcherKind::ZeroBit,
            SearcherKind::ReleqRl,
            SearcherKind::OneShot,
        ] {
            assert_eq!(SearcherKind::parse(kind.as_str()).unwrap(), kind);
            assert_eq!(kind.to_string(), kind.as_str());
        }
        assert!(SearcherKind::parse("bandit").is_err());
        assert_eq!(SearcherKind::default(), SearcherKind::Hedge);
    }

    #[test]
    fn hedge_searcher_is_bit_identical_to_raw_competition() {
        let (mut net_a, val) = setup();
        let mut net_b = net_a.clone();
        let ladder = BitLadder::paper_default();
        let lambda = LambdaSchedule::constant(0.2);
        let mut raw = comp();
        let mut wrapped = HedgeSearcher::new(comp());
        let mut r_a = rng(7);
        let mut r_b = rng(7);
        for step in 0..4 {
            let a = raw
                .run_observed(
                    &mut net_a,
                    &ladder,
                    None,
                    &lambda,
                    step,
                    &val,
                    &mut r_a,
                    &[],
                    None,
                )
                .unwrap();
            let b = wrapped
                .compete(
                    &mut net_b,
                    &ladder,
                    None,
                    &lambda,
                    step,
                    &val,
                    &mut r_b,
                    &[],
                    None,
                )
                .unwrap();
            assert_eq!(a, b);
            assert_eq!(raw.expert_weights(), wrapped.expert_weights());
        }
    }

    #[test]
    fn zero_bit_searcher_can_prune_past_the_floor() {
        let (mut net, val) = setup();
        let ladder = BitLadder::new(&[4, 2]).unwrap();
        let mut s = ZeroBitSearcher::new(comp());
        let lambda = LambdaSchedule::constant(0.0);
        let mut r = rng(3);
        let mut steps = 0usize;
        while let Some(out) = s
            .compete(
                &mut net,
                &ladder,
                None,
                &lambda,
                steps,
                &val,
                &mut r,
                &[],
                None,
            )
            .unwrap()
        {
            steps += 1;
            assert!(steps < 40, "must terminate");
            let _ = out;
        }
        // Every layer competed all the way down to pruned.
        for m in 0..net.quant_layer_count() {
            assert!(net.quant_spec(m).weight_bits.is_pruned());
        }
        assert_eq!(steps, 3 * ladder.with_zero_rung().len());
    }

    #[test]
    fn releq_searcher_is_deterministic_and_serializable() {
        let (mut net_a, val) = setup();
        let mut net_b = net_a.clone();
        let ladder = BitLadder::new(&[8, 4]).unwrap();
        let lambda = LambdaSchedule::constant(0.0);
        let mut a = ReleqSearcher::new(comp(), 0.5, 2, ladder.len());
        let mut b = ReleqSearcher::new(comp(), 0.5, 2, ladder.len());
        let mut r_a = rng(11);
        let mut r_b = rng(11);
        for step in 0..3 {
            let oa = a
                .compete(
                    &mut net_a,
                    &ladder,
                    None,
                    &lambda,
                    step,
                    &val,
                    &mut r_a,
                    &[],
                    None,
                )
                .unwrap();
            let ob = b
                .compete(
                    &mut net_b,
                    &ladder,
                    None,
                    &lambda,
                    step,
                    &val,
                    &mut r_b,
                    &[],
                    None,
                )
                .unwrap();
            assert_eq!(oa, ob, "same seed, same trajectory");
            assert_eq!(a.state(), b.state());
        }
        // State round-trips through restore into an identical policy.
        let snap = a.state();
        let slots = net_a.quant_layer_count();
        let mut c = ReleqSearcher::new(comp(), 0.5, 2, ladder.len());
        c.restore(&snap, slots).unwrap();
        assert_eq!(c.state(), snap);
        // Cross-searcher state is rejected.
        let alien = SearcherState::Hedge {
            pi: vec![1.0; slots],
        };
        assert!(c.restore(&alien, slots).is_err());
    }

    #[test]
    fn releq_policy_prefers_low_loss_actions() {
        let (mut net, val) = setup();
        let ladder = BitLadder::paper_default();
        let lambda = LambdaSchedule::constant(0.0);
        let mut s = ReleqSearcher::new(Competition::new(0.5, 4), 2.0, 4, ladder.len());
        let mut r = rng(5);
        let out = s
            .compete(&mut net, &ladder, None, &lambda, 0, &val, &mut r, &[], None)
            .unwrap()
            .unwrap();
        let mut sums = [0.0f32; 3];
        let mut counts = [0usize; 3];
        for p in &out.probes {
            sums[p.layer] += p.val_loss;
            counts[p.layer] += 1;
        }
        let means: Vec<f32> = sums
            .iter()
            .zip(&counts)
            .map(|(&s, &c)| s / c as f32)
            .collect();
        let best = (0..3)
            .min_by(|&x, &y| means[x].total_cmp(&means[y]))
            .unwrap();
        let top = (0..3)
            .max_by(|&x, &y| out.probabilities[x].total_cmp(&out.probabilities[y]))
            .unwrap();
        assert_eq!(best, top, "means={means:?} p={:?}", out.probabilities);
    }

    #[test]
    fn one_shot_probes_once_then_walks_the_order() {
        let (mut net, val) = setup();
        let ladder = BitLadder::new(&[8, 4]).unwrap();
        let lambda = LambdaSchedule::constant(0.0);
        let mut s = OneShotSearcher::new(comp());
        let mut r = rng(13);
        let mut total_probes = 0usize;
        let mut winners = Vec::new();
        while let Some(out) = s
            .compete(
                &mut net,
                &ladder,
                None,
                &lambda,
                winners.len(),
                &val,
                &mut r,
                &[],
                None,
            )
            .unwrap()
        {
            total_probes += out.probes.len();
            winners.push(out.winner_slot);
            assert!(winners.len() < 20, "must terminate");
        }
        // Exactly one measurement round (3 experts), then probe-free steps.
        assert_eq!(total_probes, 3);
        assert_eq!(winners.len(), 3 * ladder.len());
        // The order is fixed: each slot descends fully before a costlier one
        // starts only if ordering is per-draw; what must hold is that picks
        // follow the measured ascending-sensitivity order at every draw.
        let snap = s.state();
        let SearcherState::OneShot { order, .. } = &snap else {
            panic!("one-shot state tag")
        };
        assert_eq!(order.len(), 3);
        // Round-trip through restore.
        let mut fresh = OneShotSearcher::new(comp());
        fresh.restore(&snap, 3).unwrap();
        assert_eq!(fresh.state(), snap);
        assert!(fresh.restore(&snap, 5).is_err(), "slot mismatch rejected");
    }

    #[test]
    fn pristine_states_reset_searchers() {
        let mut h = HedgeSearcher::new(comp());
        h.restore(&SearcherState::Hedge { pi: vec![] }, 3).unwrap();
        assert!(h.expert_weights().is_empty());
        let mut rl = ReleqSearcher::new(comp(), 0.5, 2, 5);
        rl.restore(
            &SearcherState::ReleqRl {
                theta: vec![],
                baseline: 0.0,
                updates: 0,
            },
            3,
        )
        .unwrap();
        assert!(rl.expert_weights().is_empty());
        let mut os = OneShotSearcher::new(comp());
        os.restore(
            &SearcherState::OneShot {
                order: vec![],
                sensitivities: vec![],
            },
            3,
        )
        .unwrap();
        assert!(os.expert_weights().is_empty());
    }
}
