//! Structured descent events and pluggable observers.
//!
//! The staged engine ([`crate::DescentEngine`]) narrates a run as a stream
//! of [`DescentEvent`]s: the baseline measurement, every competition probe
//! round (with per-expert losses ξ and the Hedge weights π), each quantize
//! decision and recovery epoch, guard rollbacks, and autosaves. Anything
//! that wants to observe a run — trace collection, CSV/JSONL export, live
//! dashboards — implements [`EventSink`] and receives the stream without
//! the orchestration loop knowing it exists.
//!
//! The engine always feeds an internal [`TraceBuffer`], which reproduces
//! the legacy [`TracePoint`]/[`StepRecord`] vectors bit-for-bit (including
//! discarding the points of a rolled-back step); the report's CSV emitters
//! are thin renderers over those vectors, shared with [`CsvSink`].
//!
//! # Sink contract
//!
//! - Events arrive in trajectory order, one stream per run; a sink
//!   attached to a resumed run sees only the continuation.
//! - Sinks are passive: they cannot alter the descent, and the trajectory
//!   is bit-identical whatever sink is attached.
//! - A [`DescentEvent::GuardRollback`] *retracts* the current step's
//!   earlier `QuantizeDecision`/`RecoveryEpoch` events (the guard rolled
//!   the step back); `discarded_trace_points` counts exactly how many
//!   trace points they contributed. Append-only sinks like [`JsonlSink`]
//!   keep the retracted events and record the rollback marker instead.

use crate::{ExpertKind, Phase, ProbeRecord};
use ccq_quant::BitWidth;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::path::PathBuf;

/// What happened at a point of the learning curve (Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Baseline evaluation of the incoming full-precision network.
    Baseline,
    /// The initial everything-to-`N(0)` quantization.
    InitQuantize,
    /// A competition winner was quantized (a valley).
    QuantStep {
        /// The quantized layer index.
        layer: usize,
        /// Its new precision.
        to_bits: BitWidth,
    },
    /// One collaboration (fine-tuning) epoch (a climb back up).
    Recovery,
}

/// One point of the CCQ learning curve.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TracePoint {
    /// Global fine-tuning epoch count when the point was taken.
    pub epoch: usize,
    /// Validation accuracy.
    pub val_accuracy: f32,
    /// Learning rate in effect.
    pub lr: f32,
    /// What produced the point.
    pub event: TraceEvent,
}

/// Record of one quantization step (competition + collaboration).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step index `t` (1-based; 0 is the ladder-top initialization).
    pub step: usize,
    /// Winning layer index.
    pub layer: usize,
    /// Which operand the step lowered.
    pub kind: ExpertKind,
    /// Winning layer label.
    pub label: String,
    /// Precision before.
    pub from_bits: BitWidth,
    /// Precision after.
    pub to_bits: BitWidth,
    /// Validation accuracy entering the step.
    pub accuracy_before: f32,
    /// Validation accuracy right after quantizing (the valley).
    pub accuracy_after_quant: f32,
    /// Validation accuracy after collaboration recovered it.
    pub accuracy_after_recovery: f32,
    /// Fine-tuning epochs the recovery used (`S_t`).
    pub recovery_epochs: usize,
    /// Weight-compression ratio after the step.
    pub compression: f64,
    /// λ in effect during the step.
    pub lambda: f32,
}

/// One structured event in a descent's narration.
///
/// Events carry everything an observer needs; none of them borrow engine
/// state, so sinks may retain them.
#[derive(Debug, Clone, PartialEq)]
pub enum DescentEvent {
    /// The engine is about to execute a phase. Emitted before every
    /// [`crate::DescentEngine::step`] body, so observers (notably
    /// [`crate::MetricsSink`]) can attribute wall/virtual time to exact
    /// phase spans without guessing from payload events.
    PhaseStarted {
        /// The phase about to run.
        phase: Phase,
        /// The quantization step `t` in flight (0 before the first
        /// competition).
        step: usize,
    },
    /// The incoming full-precision network was measured.
    Baseline {
        /// Validation accuracy of the fp32 network.
        accuracy: f32,
        /// The configured base learning rate.
        lr: f32,
    },
    /// Every unfrozen layer was moved to the ladder's top rung `N(0)`.
    InitQuantize {
        /// Validation accuracy right after the initial quantization.
        accuracy: f32,
        /// The configured base learning rate.
        lr: f32,
    },
    /// One competition probe round finished: per-expert validation losses
    /// ξ and the Hedge weights π after the round's multiplicative updates
    /// (before the end-of-competition rescaling).
    ProbeRound {
        /// Quantization step `t` the round belongs to (1-based).
        step: usize,
        /// Round index `u` within the step.
        round: usize,
        /// The round's probes in expert order (one per draw in the
        /// sampled regime).
        probes: Vec<ProbeRecord>,
        /// π after this round's updates.
        pi: Vec<f32>,
    },
    /// The competition drew a winner and its precision was lowered.
    QuantizeDecision {
        /// Quantization step `t` (1-based).
        step: usize,
        /// Global fine-tuning epoch count at the decision.
        epoch: usize,
        /// Winning layer index.
        layer: usize,
        /// Which operand was lowered.
        kind: ExpertKind,
        /// Winning layer label.
        label: String,
        /// Precision before.
        from_bits: BitWidth,
        /// Precision after.
        to_bits: BitWidth,
        /// The λ-blended draw distribution over π slots.
        probabilities: Vec<f32>,
        /// Validation accuracy right after the cut (the valley).
        valley_accuracy: f32,
        /// Learning rate in effect.
        lr: f32,
        /// Label of the searcher that made this decision (e.g.
        /// `"hedge"`, `"releq"`).
        searcher: String,
    },
    /// One collaboration (fine-tuning) epoch completed.
    RecoveryEpoch {
        /// Quantization step `t` being recovered (0 = the initial
        /// post-ladder-top stage).
        step: usize,
        /// Global fine-tuning epoch count after this epoch.
        epoch: usize,
        /// Mean training loss of the epoch.
        train_loss: f32,
        /// Validation accuracy after the epoch.
        val_accuracy: f32,
        /// Learning rate used for the epoch.
        lr: f32,
    },
    /// The divergence guard rolled the current step back to its pre-step
    /// snapshot, retracting the step's earlier events.
    GuardRollback {
        /// The step that diverged.
        step: usize,
        /// Retry attempt count after this rollback (1-based).
        attempt: usize,
        /// How many trace points the retracted events contributed.
        discarded_trace_points: usize,
        /// The π slot quarantined by [`crate::GuardPolicy::Quarantine`],
        /// when that policy is active.
        quarantined_slot: Option<usize>,
    },
    /// A quantization step completed healthily.
    StepCompleted {
        /// The step's full record.
        record: StepRecord,
    },
    /// The run state was atomically written to the autosave path.
    Autosave {
        /// The next step the saved state resumes from.
        next_step: usize,
        /// The autosave path.
        path: PathBuf,
    },
    /// The descent finished and the report is final.
    Finished {
        /// Accuracy of the incoming full-precision network.
        baseline_accuracy: f32,
        /// Accuracy of the final mixed-precision network.
        final_accuracy: f32,
        /// Final weight-compression ratio vs fp32.
        final_compression: f64,
        /// Final per-layer bit pattern, e.g. `"6-4-3-…-2"`.
        bit_pattern: String,
    },
}

/// A passive observer of a descent's event stream.
pub trait EventSink {
    /// Receives the next event. Events arrive in trajectory order; see
    /// the [module docs](self) for the full contract.
    fn on_event(&mut self, ev: &DescentEvent);
}

/// A sink that discards every event.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl EventSink for NullSink {
    fn on_event(&mut self, _ev: &DescentEvent) {}
}

/// The default sink: folds the event stream back into the legacy
/// [`TracePoint`] / [`StepRecord`] vectors, bit-for-bit.
///
/// A [`DescentEvent::GuardRollback`] truncates the trace by the event's
/// `discarded_trace_points`, exactly as the pre-engine runner truncated to
/// its pre-step snapshot.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    trace: Vec<TracePoint>,
    steps: Vec<StepRecord>,
}

impl TraceBuffer {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// A buffer pre-seeded with an earlier run's vectors (resume).
    pub fn with_history(trace: Vec<TracePoint>, steps: Vec<StepRecord>) -> Self {
        TraceBuffer { trace, steps }
    }

    /// The learning-curve points collected so far.
    pub fn trace(&self) -> &[TracePoint] {
        &self.trace
    }

    /// The step records collected so far.
    pub fn steps(&self) -> &[StepRecord] {
        &self.steps
    }

    /// Consumes the buffer, returning `(trace, steps)`.
    pub fn into_parts(self) -> (Vec<TracePoint>, Vec<StepRecord>) {
        (self.trace, self.steps)
    }

    /// The learning curve as CSV — same bytes as
    /// [`crate::CcqReport::trace_csv`].
    pub fn trace_csv(&self) -> String {
        render_trace_csv(&self.trace)
    }

    /// The schedule as CSV — same bytes as
    /// [`crate::CcqReport::schedule_csv`].
    pub fn schedule_csv(&self) -> String {
        render_schedule_csv(&self.steps)
    }
}

impl EventSink for TraceBuffer {
    fn on_event(&mut self, ev: &DescentEvent) {
        match ev {
            DescentEvent::Baseline { accuracy, lr } => self.trace.push(TracePoint {
                epoch: 0,
                val_accuracy: *accuracy,
                lr: *lr,
                event: TraceEvent::Baseline,
            }),
            DescentEvent::InitQuantize { accuracy, lr } => self.trace.push(TracePoint {
                epoch: 0,
                val_accuracy: *accuracy,
                lr: *lr,
                event: TraceEvent::InitQuantize,
            }),
            DescentEvent::QuantizeDecision {
                epoch,
                layer,
                to_bits,
                valley_accuracy,
                lr,
                ..
            } => self.trace.push(TracePoint {
                epoch: *epoch,
                val_accuracy: *valley_accuracy,
                lr: *lr,
                event: TraceEvent::QuantStep {
                    layer: *layer,
                    to_bits: *to_bits,
                },
            }),
            DescentEvent::RecoveryEpoch {
                epoch,
                val_accuracy,
                lr,
                ..
            } => self.trace.push(TracePoint {
                epoch: *epoch,
                val_accuracy: *val_accuracy,
                lr: *lr,
                event: TraceEvent::Recovery,
            }),
            DescentEvent::GuardRollback {
                discarded_trace_points,
                ..
            } => {
                let keep = self.trace.len().saturating_sub(*discarded_trace_points);
                self.trace.truncate(keep);
            }
            DescentEvent::StepCompleted { record } => self.steps.push(record.clone()),
            DescentEvent::PhaseStarted { .. }
            | DescentEvent::ProbeRound { .. }
            | DescentEvent::Autosave { .. }
            | DescentEvent::Finished { .. } => {}
        }
    }
}

/// A [`TraceBuffer`] that exposes its contents as the legacy CSV strings;
/// attach one to get `trace_csv`/`schedule_csv` output byte-identical to
/// [`crate::CcqReport`]'s emitters.
#[derive(Debug, Clone, Default)]
pub struct CsvSink {
    buf: TraceBuffer,
}

impl CsvSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The learning curve as CSV (`epoch,val_accuracy,lr,event`).
    pub fn trace_csv(&self) -> String {
        self.buf.trace_csv()
    }

    /// The schedule as CSV, one row per quantization step.
    pub fn schedule_csv(&self) -> String {
        self.buf.schedule_csv()
    }
}

impl EventSink for CsvSink {
    fn on_event(&mut self, ev: &DescentEvent) {
        self.buf.on_event(ev);
    }
}

/// Fans one event stream out to several sinks, in push order.
///
/// This is how orthogonal observers compose: a [`CsvSink`] for the
/// figure, a [`JsonlSink`] for the raw log, and a
/// [`crate::MetricsSink`] for counters and timings can all watch the
/// same run.
///
/// # Example
///
/// ```
/// use ccq::{CsvSink, FanoutSink, MetricsSink};
///
/// let mut csv = CsvSink::new();
/// let mut metrics = MetricsSink::manual(1_000);
/// let mut sink = FanoutSink::new().with(&mut csv).with(&mut metrics);
/// // runner.run_with_sink(&mut net, &train, &val, &mut sink)?;
/// # let _ = &mut sink;
/// ```
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> FanoutSink<'a> {
    /// An empty fanout (events are discarded until a sink is added).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a sink (builder style).
    #[must_use]
    pub fn with(mut self, sink: &'a mut dyn EventSink) -> Self {
        self.sinks.push(sink);
        self
    }

    /// Adds a sink.
    pub fn push(&mut self, sink: &'a mut dyn EventSink) {
        self.sinks.push(sink);
    }

    /// How many sinks are attached.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sink is attached.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl EventSink for FanoutSink<'_> {
    fn on_event(&mut self, ev: &DescentEvent) {
        for sink in &mut self.sinks {
            sink.on_event(ev);
        }
    }
}

/// Streams every event as one JSON object per line (JSON Lines).
///
/// The writer is hand-rolled (the vendored serde is a marker stub):
/// floats print in Rust's shortest round-trip form, non-finite floats
/// become `null`. Write errors are sticky — the first one is retained and
/// later events are dropped; check [`JsonlSink::io_error`] when the run
/// ends.
#[derive(Debug)]
pub struct JsonlSink<W: std::io::Write> {
    out: W,
    error: Option<std::io::Error>,
}

impl<W: std::io::Write> JsonlSink<W> {
    /// Wraps a writer (wrap files in a `BufWriter`).
    pub fn new(out: W) -> Self {
        JsonlSink { out, error: None }
    }

    /// The first write error, if any event failed to serialize.
    pub fn io_error(&self) -> Option<&std::io::Error> {
        self.error.as_ref()
    }

    /// Unwraps the writer, discarding any sticky error.
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: std::io::Write> EventSink for JsonlSink<W> {
    fn on_event(&mut self, ev: &DescentEvent) {
        if self.error.is_some() {
            return;
        }
        let mut line = event_json(ev);
        line.push('\n');
        if let Err(e) = self.out.write_all(line.as_bytes()) {
            self.error = Some(e);
        }
    }
}

/// Renders the learning curve as CSV (`epoch,val_accuracy,lr,event`) —
/// the Fig. 2 series, one row per trace point.
pub fn render_trace_csv(trace: &[TracePoint]) -> String {
    let mut out = String::from("epoch,val_accuracy,lr,event\n");
    for p in trace {
        let event = match p.event {
            TraceEvent::Baseline => "baseline".to_string(),
            TraceEvent::InitQuantize => "init_quantize".to_string(),
            TraceEvent::QuantStep { layer, to_bits } => {
                format!("quant_layer{layer}_to_{to_bits}")
            }
            TraceEvent::Recovery => "recovery".to_string(),
        };
        let _ = writeln!(
            out,
            "{},{:.4},{:.6},{}",
            p.epoch, p.val_accuracy, p.lr, event
        );
    }
    out
}

/// Renders the quantization schedule as CSV, one row per step.
pub fn render_schedule_csv(steps: &[StepRecord]) -> String {
    let mut out = String::from(
        "step,layer,kind,label,from,to,acc_before,acc_valley,acc_recovered,epochs,compression,lambda\n",
    );
    for s in steps {
        let kind = kind_str(s.kind);
        let _ = writeln!(
            out,
            "{},{},{kind},{},{},{},{:.4},{:.4},{:.4},{},{:.2},{:.3}",
            s.step,
            s.layer,
            csv_field(&s.label),
            s.from_bits,
            s.to_bits,
            s.accuracy_before,
            s.accuracy_after_quant,
            s.accuracy_after_recovery,
            s.recovery_epochs,
            s.compression,
            s.lambda
        );
    }
    out
}

fn kind_str(kind: ExpertKind) -> &'static str {
    match kind {
        ExpertKind::Layer => "layer",
        ExpertKind::Weights => "weights",
        ExpertKind::Activations => "acts",
    }
}

/// The JSONL spelling of a phase (see [`crate::replay`] for the inverse).
pub(crate) fn phase_str(phase: Phase) -> &'static str {
    match phase {
        Phase::InitQuantize => "init_quantize",
        Phase::Compete => "compete",
        Phase::Quantize => "quantize",
        Phase::Recover => "recover",
        Phase::Checkpoint => "checkpoint",
        Phase::Done => "done",
    }
}

/// RFC-4180 escaping for one CSV field: fields containing a comma,
/// double quote, or line break are quoted, with embedded quotes doubled.
/// Everything else passes through unchanged, keeping the historical
/// bytes for ordinary labels.
fn csv_field(raw: &str) -> String {
    if raw.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(raw.len() + 2);
        out.push('"');
        for c in raw.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
        out
    } else {
        raw.to_string()
    }
}

/// Serializes one event as a single-line JSON object (no trailing
/// newline) — the [`JsonlSink`] row format.
pub fn event_json(ev: &DescentEvent) -> String {
    let mut s = String::with_capacity(128);
    s.push('{');
    match ev {
        DescentEvent::PhaseStarted { phase, step } => {
            let _ = write!(
                s,
                "\"event\":\"phase_started\",\"phase\":\"{}\",\"step\":{step}",
                phase_str(*phase)
            );
        }
        DescentEvent::Baseline { accuracy, lr } => {
            s.push_str("\"event\":\"baseline\",\"accuracy\":");
            jf32(*accuracy, &mut s);
            s.push_str(",\"lr\":");
            jf32(*lr, &mut s);
        }
        DescentEvent::InitQuantize { accuracy, lr } => {
            s.push_str("\"event\":\"init_quantize\",\"accuracy\":");
            jf32(*accuracy, &mut s);
            s.push_str(",\"lr\":");
            jf32(*lr, &mut s);
        }
        DescentEvent::ProbeRound {
            step,
            round,
            probes,
            pi,
        } => {
            let _ = write!(
                s,
                "\"event\":\"probe_round\",\"step\":{step},\"round\":{round}"
            );
            s.push_str(",\"probes\":[");
            for (i, p) in probes.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                let _ = write!(
                    s,
                    "{{\"round\":{},\"layer\":{},\"kind\":\"{}\",\"val_loss\":",
                    p.round,
                    p.layer,
                    kind_str(p.kind)
                );
                jf32(p.val_loss, &mut s);
                s.push('}');
            }
            s.push_str("],\"pi\":");
            jf32_array(pi, &mut s);
        }
        DescentEvent::QuantizeDecision {
            step,
            epoch,
            layer,
            kind,
            label,
            from_bits,
            to_bits,
            probabilities,
            valley_accuracy,
            lr,
            searcher,
        } => {
            let _ = write!(
                s,
                "\"event\":\"quantize\",\"step\":{step},\"epoch\":{epoch},\"layer\":{layer},\"kind\":\"{}\",\"label\":",
                kind_str(*kind)
            );
            jstr(label, &mut s);
            let _ = write!(
                s,
                ",\"from_bits\":\"{from_bits}\",\"to_bits\":\"{to_bits}\""
            );
            s.push_str(",\"valley_accuracy\":");
            jf32(*valley_accuracy, &mut s);
            s.push_str(",\"lr\":");
            jf32(*lr, &mut s);
            s.push_str(",\"probabilities\":");
            jf32_array(probabilities, &mut s);
            s.push_str(",\"searcher\":");
            jstr(searcher, &mut s);
        }
        DescentEvent::RecoveryEpoch {
            step,
            epoch,
            train_loss,
            val_accuracy,
            lr,
        } => {
            let _ = write!(
                s,
                "\"event\":\"recovery_epoch\",\"step\":{step},\"epoch\":{epoch}"
            );
            s.push_str(",\"train_loss\":");
            jf32(*train_loss, &mut s);
            s.push_str(",\"val_accuracy\":");
            jf32(*val_accuracy, &mut s);
            s.push_str(",\"lr\":");
            jf32(*lr, &mut s);
        }
        DescentEvent::GuardRollback {
            step,
            attempt,
            discarded_trace_points,
            quarantined_slot,
        } => {
            let _ = write!(
                s,
                "\"event\":\"guard_rollback\",\"step\":{step},\"attempt\":{attempt},\"discarded_trace_points\":{discarded_trace_points},\"quarantined_slot\":"
            );
            match quarantined_slot {
                Some(slot) => {
                    let _ = write!(s, "{slot}");
                }
                None => s.push_str("null"),
            }
        }
        DescentEvent::StepCompleted { record: r } => {
            let _ = write!(
                s,
                "\"event\":\"step\",\"step\":{},\"layer\":{},\"kind\":\"{}\",\"label\":",
                r.step,
                r.layer,
                kind_str(r.kind)
            );
            jstr(&r.label, &mut s);
            let _ = write!(
                s,
                ",\"from_bits\":\"{}\",\"to_bits\":\"{}\"",
                r.from_bits, r.to_bits
            );
            s.push_str(",\"accuracy_before\":");
            jf32(r.accuracy_before, &mut s);
            s.push_str(",\"accuracy_after_quant\":");
            jf32(r.accuracy_after_quant, &mut s);
            s.push_str(",\"accuracy_after_recovery\":");
            jf32(r.accuracy_after_recovery, &mut s);
            let _ = write!(
                s,
                ",\"recovery_epochs\":{},\"compression\":",
                r.recovery_epochs
            );
            jf64(r.compression, &mut s);
            s.push_str(",\"lambda\":");
            jf32(r.lambda, &mut s);
        }
        DescentEvent::Autosave { next_step, path } => {
            let _ = write!(
                s,
                "\"event\":\"autosave\",\"next_step\":{next_step},\"path\":"
            );
            jstr(&path.display().to_string(), &mut s);
        }
        DescentEvent::Finished {
            baseline_accuracy,
            final_accuracy,
            final_compression,
            bit_pattern,
        } => {
            s.push_str("\"event\":\"finished\",\"baseline_accuracy\":");
            jf32(*baseline_accuracy, &mut s);
            s.push_str(",\"final_accuracy\":");
            jf32(*final_accuracy, &mut s);
            s.push_str(",\"final_compression\":");
            jf64(*final_compression, &mut s);
            s.push_str(",\"bit_pattern\":");
            jstr(bit_pattern, &mut s);
        }
    }
    s.push('}');
    s
}

/// Shortest round-trip float, or `null` for non-finite values (JSON has
/// no NaN/Inf literals).
fn jf32(x: f32, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn jf64(x: f64, out: &mut String) {
    if x.is_finite() {
        let _ = write!(out, "{x}");
    } else {
        out.push_str("null");
    }
}

fn jf32_array(xs: &[f32], out: &mut String) {
    out.push('[');
    for (i, &x) in xs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        jf32(x, out);
    }
    out.push(']');
}

/// JSON string literal with `"`, `\`, and control characters escaped.
fn jstr(raw: &str, out: &mut String) {
    out.push('"');
    for c in raw.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quantize_ev(epoch: usize, acc: f32) -> DescentEvent {
        DescentEvent::QuantizeDecision {
            step: 1,
            epoch,
            layer: 2,
            kind: ExpertKind::Layer,
            label: "fc2".into(),
            from_bits: BitWidth::of(8),
            to_bits: BitWidth::of(4),
            probabilities: vec![0.25, 0.75],
            valley_accuracy: acc,
            lr: 0.02,
            searcher: "hedge".into(),
        }
    }

    fn recovery_ev(epoch: usize) -> DescentEvent {
        DescentEvent::RecoveryEpoch {
            step: 1,
            epoch,
            train_loss: 0.5,
            val_accuracy: 0.9,
            lr: 0.01,
        }
    }

    #[test]
    fn trace_buffer_folds_events_into_legacy_vectors() {
        let mut buf = TraceBuffer::new();
        buf.on_event(&DescentEvent::Baseline {
            accuracy: 0.95,
            lr: 0.02,
        });
        buf.on_event(&DescentEvent::InitQuantize {
            accuracy: 0.91,
            lr: 0.02,
        });
        buf.on_event(&quantize_ev(0, 0.7));
        buf.on_event(&recovery_ev(1));
        assert_eq!(buf.trace().len(), 4);
        assert!(matches!(buf.trace()[0].event, TraceEvent::Baseline));
        assert!(matches!(
            buf.trace()[2].event,
            TraceEvent::QuantStep { layer: 2, .. }
        ));
        assert_eq!(buf.trace()[3].epoch, 1);
        assert!(buf.steps().is_empty());
    }

    #[test]
    fn guard_rollback_retracts_the_discarded_points() {
        let mut buf = TraceBuffer::new();
        buf.on_event(&DescentEvent::Baseline {
            accuracy: 0.95,
            lr: 0.02,
        });
        buf.on_event(&quantize_ev(0, 0.7));
        buf.on_event(&recovery_ev(1));
        buf.on_event(&recovery_ev(2));
        buf.on_event(&DescentEvent::GuardRollback {
            step: 1,
            attempt: 1,
            discarded_trace_points: 3,
            quarantined_slot: None,
        });
        assert_eq!(buf.trace().len(), 1, "only the baseline survives");
        assert!(matches!(buf.trace()[0].event, TraceEvent::Baseline));
    }

    #[test]
    fn json_escapes_strings_and_maps_non_finite_to_null() {
        let ev = DescentEvent::Finished {
            baseline_accuracy: f32::NAN,
            final_accuracy: 0.5,
            final_compression: 8.0,
            bit_pattern: "4b-\"x\"\n".into(),
        };
        let json = event_json(&ev);
        assert!(json.contains("\"baseline_accuracy\":null"));
        assert!(json.contains("\"bit_pattern\":\"4b-\\\"x\\\"\\n\""));
        assert!(json.starts_with('{') && json.ends_with('}'));
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.on_event(&recovery_ev(1));
        sink.on_event(&quantize_ev(1, 0.8));
        assert!(sink.io_error().is_none());
        let out = String::from_utf8(sink.into_inner()).unwrap();
        assert_eq!(out.lines().count(), 2);
        for line in out.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
    }
}
