//! Competitive-Collaborative Quantization (CCQ).
//!
//! Reproduction of *"Learning to Quantize Deep Neural Networks: A
//! Competitive-Collaborative Approach"* (Khan, Kamani, Mahdavi, Narayanan —
//! DAC 2020). CCQ is an accuracy-driven, policy-agnostic framework that
//! learns a **mixed-precision** bit assignment for every layer of a network
//! by alternating two stages:
//!
//! 1. **[`Competition`]** — every layer is an expert in an online-learning
//!    (Hedge) game. Probes hypothetically lower one layer's precision a
//!    rung on the [`ccq_quant::BitLadder`] and measure validation loss; the
//!    multiplicative-weights distribution then picks the layer that hurts
//!    accuracy least (blended with a size-proportional term, Eq. 7 — see
//!    [`LambdaSchedule`]). Layers at the bottom rung become *sleeping
//!    experts*.
//! 2. **[`Collaboration`]** — the whole network fine-tunes with
//!    quantization-aware training until accuracy recovers, either for a
//!    fixed budget ([`RecoveryMode::Manual`]) or until a threshold
//!    ([`RecoveryMode::Adaptive`]), optionally with the paper's hybrid
//!    plateau/cosine-restart learning rate.
//!
//! [`CcqRunner`] orchestrates the full loop and records the learning curve
//! (Fig. 2), the quantization schedule, and the compression trajectory.
//! The [`baselines`] module implements the paper's comparison points:
//! one-shot quantization (Table I) and a HAWQ-style Hessian-trace proxy
//! (Table II).
//!
//! # Example
//!
//! ```no_run
//! use ccq::{CcqConfig, CcqRunner};
//! use ccq_data::{synth_cifar, SynthCifarConfig};
//! use ccq_models::{resnet20, ModelConfig};
//!
//! let data = synth_cifar(&SynthCifarConfig::default());
//! let (train, val) = data.split_at(512);
//! let mut net = resnet20(&ModelConfig::default());
//! let mut runner = CcqRunner::new(CcqConfig::default());
//! let report = runner.run(&mut net, &train, &val)?;
//! println!("compression {:.1}x at {:.1}% accuracy",
//!          report.final_compression, 100.0 * report.final_accuracy);
//! # Ok::<(), ccq::CcqError>(())
//! ```

pub mod baselines;
mod clock;
mod competition;
mod engine;
mod error;
pub mod event;
#[cfg(feature = "fault-inject")]
pub mod fault;
mod guard;
mod lambda;
mod metrics;
mod profiles;
mod recovery;
mod replay;
mod run_state;
mod runner;
mod searcher;

pub use clock::{Clock, ManualClock, WallClock};
pub use competition::{
    Competition, CompetitionOutcome, ExpertGranularity, ExpertKind, ProbeCacheStats, ProbeObserver,
    ProbeRecord, ProbeRegime,
};
pub use engine::{DescentEngine, DriveOutcome, Phase, RunControl, StartPoint, StepOutcome};
pub use error::CcqError;
pub use event::{
    CsvSink, DescentEvent, EventSink, FanoutSink, JsonlSink, NullSink, StepRecord, TraceBuffer,
    TraceEvent, TracePoint,
};
#[cfg(feature = "fault-inject")]
pub use fault::FaultPlan;
pub use guard::GuardPolicy;
pub use lambda::LambdaSchedule;
pub use metrics::{
    Histogram, MetricsRegistry, MetricsSink, DROP_BUCKETS, EPOCH_BUCKETS, LOSS_BUCKETS,
    SEGMENT_SKIP_BUCKETS, XI_BUCKETS,
};
pub use profiles::layer_profiles;
pub use recovery::{Collaboration, EpochHook, RecoveryMode, RecoveryRecord};
pub use replay::{
    parse_event_line, parse_events, parse_events_lenient, parse_probe_cache_stats,
    render_probe_cache_stats, render_run_summary, render_searcher_summary, LenientParse,
    ReplayError, TruncatedTail,
};
pub use run_state::RunState;
pub use runner::{CcqConfig, CcqReport, CcqRunner};
pub use searcher::{
    HedgeSearcher, OneShotSearcher, ReleqSearcher, Searcher, SearcherKind, SearcherState,
    ZeroBitSearcher,
};

/// Crate-wide result alias. See [`CcqError`] for the error cases.
pub type Result<T> = std::result::Result<T, CcqError>;
