//! Dynamic tensor shapes.

use crate::{Result, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dynamically-sized tensor shape (list of dimension extents).
///
/// `Shape` is a thin wrapper over `Vec<usize>` adding volume/stride helpers
/// and validation. Dimension order follows the NCHW convention used across
/// the workspace: for a 4-D activation tensor the dims are
/// `[batch, channels, height, width]`.
///
/// # Example
///
/// ```
/// use ccq_tensor::Shape;
///
/// let s = Shape::new(&[2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.strides(), vec![12, 4, 1]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from a slice of dimension extents.
    pub fn new(dims: &[usize]) -> Self {
        Shape {
            dims: dims.to_vec(),
        }
    }

    /// Creates a scalar (rank-0) shape with volume 1.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// The dimension extents.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Total number of elements (product of extents; 1 for a scalar).
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Extent of dimension `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::AxisOutOfRange`] if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> Result<usize> {
        self.dims
            .get(axis)
            .copied()
            .ok_or(TensorError::AxisOutOfRange {
                axis,
                rank: self.dims.len(),
            })
    }

    /// Row-major strides, in elements.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Flat row-major offset of a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `index` has the wrong rank or any component
    /// is out of bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        debug_assert_eq!(index.len(), self.dims.len(), "index rank mismatch");
        let mut off = 0;
        let mut stride = 1;
        for (i, (&ix, &d)) in index.iter().zip(&self.dims).enumerate().rev() {
            debug_assert!(ix < d, "index {ix} out of bounds for dim {i} of extent {d}");
            let _ = i;
            off += ix * stride;
            stride *= d;
        }
        off
    }

    /// Checks that `self` equals `other`, producing a descriptive error
    /// otherwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when the shapes differ.
    pub fn expect_eq(&self, other: &Shape) -> Result<()> {
        if self == other {
            Ok(())
        } else {
            Err(TensorError::ShapeMismatch {
                expected: self.dims.clone(),
                actual: other.dims.clone(),
            })
        }
    }

    /// Checks that the shape has rank `rank`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] otherwise.
    pub fn expect_rank(&self, rank: usize) -> Result<()> {
        if self.rank() == rank {
            Ok(())
        } else {
            Err(TensorError::RankMismatch {
                expected: rank,
                actual: self.rank(),
            })
        }
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims)
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape { dims }
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}", self.dims)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(&[4, 3, 2]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
    }

    #[test]
    fn scalar_shape_has_volume_one() {
        let s = Shape::scalar();
        assert_eq!(s.numel(), 1);
        assert_eq!(s.rank(), 0);
    }

    #[test]
    fn strides_are_row_major() {
        assert_eq!(Shape::new(&[2, 3, 4]).strides(), vec![12, 4, 1]);
        assert_eq!(Shape::new(&[5]).strides(), vec![1]);
        assert!(Shape::scalar().strides().is_empty());
    }

    #[test]
    fn offset_matches_strides() {
        let s = Shape::new(&[2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]), 0);
        assert_eq!(s.offset(&[1, 2, 3]), 12 + 8 + 3);
    }

    #[test]
    fn dim_out_of_range_errors() {
        let s = Shape::new(&[2]);
        assert!(matches!(
            s.dim(1),
            Err(TensorError::AxisOutOfRange { axis: 1, rank: 1 })
        ));
    }

    #[test]
    fn expect_eq_reports_both_shapes() {
        let a = Shape::new(&[1, 2]);
        let b = Shape::new(&[2, 1]);
        let err = a.expect_eq(&b).unwrap_err();
        assert!(matches!(err, TensorError::ShapeMismatch { .. }));
    }

    #[test]
    fn zero_extent_dim_gives_zero_volume() {
        assert_eq!(Shape::new(&[3, 0, 2]).numel(), 0);
    }
}
