//! Random tensor initializers.

use crate::Tensor;
use rand::{Rng, SeedableRng};

/// The deterministic RNG used across the workspace.
///
/// All experiments seed a `Rng64` explicitly so that every table and figure
/// is exactly reproducible from the command line.
pub type Rng64 = rand::rngs::StdRng;

/// Creates a seeded [`Rng64`].
///
/// # Example
///
/// ```
/// use ccq_tensor::{Init, rng};
///
/// let mut r = rng(42);
/// let w = Init::KaimingNormal { fan_in: 9 }.sample(&[4, 1, 3, 3], &mut r);
/// assert_eq!(w.shape(), &[4, 1, 3, 3]);
/// ```
pub fn rng(seed: u64) -> Rng64 {
    Rng64::seed_from_u64(seed)
}

/// Captures the raw generator state of an [`Rng64`] so a long run can be
/// checkpointed and resumed bit-for-bit.
///
/// # Example
///
/// ```
/// use ccq_tensor::{rng, rng_from_state, rng_state};
/// use rand::Rng;
///
/// let mut a = rng(7);
/// let _: f32 = a.gen();
/// let mut b = rng_from_state(rng_state(&a));
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn rng_state(r: &Rng64) -> [u64; 4] {
    r.state()
}

/// Rebuilds an [`Rng64`] from a state captured with [`rng_state`],
/// continuing the random stream exactly where the capture left off.
pub fn rng_from_state(state: [u64; 4]) -> Rng64 {
    Rng64::from_state(state)
}

/// Weight/bias initialization schemes.
///
/// # Example
///
/// ```
/// use ccq_tensor::{Init, rng};
///
/// let mut r = rng(0);
/// let t = Init::Uniform { lo: -1.0, hi: 1.0 }.sample(&[1000], &mut r);
/// assert!(t.max() <= 1.0 && t.min() >= -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros.
    Zeros,
    /// All ones.
    Ones,
    /// Every element set to the given constant.
    Constant(f32),
    /// Uniform on `[lo, hi)`.
    Uniform {
        /// Lower bound (inclusive).
        lo: f32,
        /// Upper bound (exclusive).
        hi: f32,
    },
    /// Gaussian with the given mean and standard deviation.
    Normal {
        /// Mean of the distribution.
        mean: f32,
        /// Standard deviation of the distribution.
        std: f32,
    },
    /// He/Kaiming normal: `N(0, sqrt(2 / fan_in))`, the standard choice for
    /// ReLU networks (and the one the ResNet paper uses).
    KaimingNormal {
        /// Number of input connections per output unit.
        fan_in: usize,
    },
    /// Glorot/Xavier uniform: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
    XavierUniform {
        /// Number of input connections per output unit.
        fan_in: usize,
        /// Number of output connections per input unit.
        fan_out: usize,
    },
}

impl Init {
    /// Samples a tensor of the given shape from this initializer.
    pub fn sample(&self, dims: &[usize], rng: &mut Rng64) -> Tensor {
        match *self {
            Init::Zeros => Tensor::zeros(dims),
            Init::Ones => Tensor::ones(dims),
            Init::Constant(c) => Tensor::full(dims, c),
            Init::Uniform { lo, hi } => Tensor::from_fn(dims, |_| rng.gen_range(lo..hi)),
            Init::Normal { mean, std } => {
                Tensor::from_fn(dims, |_| mean + std * sample_standard_normal(rng))
            }
            Init::KaimingNormal { fan_in } => {
                let std = (2.0 / fan_in.max(1) as f32).sqrt();
                Tensor::from_fn(dims, |_| std * sample_standard_normal(rng))
            }
            Init::XavierUniform { fan_in, fan_out } => {
                let a = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
                Tensor::from_fn(dims, |_| rng.gen_range(-a..a))
            }
        }
    }
}

/// One standard-normal sample via the Box–Muller transform (avoids a
/// `rand_distr` dependency).
fn sample_standard_normal(rng: &mut Rng64) -> f32 {
    // u1 in (0, 1] so ln is finite.
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let a = Init::Normal {
            mean: 0.0,
            std: 1.0,
        }
        .sample(&[32], &mut rng(7));
        let b = Init::Normal {
            mean: 0.0,
            std: 1.0,
        }
        .sample(&[32], &mut rng(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Init::Uniform { lo: 0.0, hi: 1.0 }.sample(&[32], &mut rng(1));
        let b = Init::Uniform { lo: 0.0, hi: 1.0 }.sample(&[32], &mut rng(2));
        assert_ne!(a, b);
    }

    #[test]
    fn normal_moments_are_plausible() {
        let t = Init::Normal {
            mean: 2.0,
            std: 0.5,
        }
        .sample(&[20000], &mut rng(3));
        assert!((t.mean() - 2.0).abs() < 0.05, "mean was {}", t.mean());
        assert!((t.std() - 0.5).abs() < 0.05, "std was {}", t.std());
    }

    #[test]
    fn kaiming_std_tracks_fan_in() {
        let t = Init::KaimingNormal { fan_in: 8 }.sample(&[20000], &mut rng(4));
        let expected = (2.0f32 / 8.0).sqrt();
        assert!((t.std() - expected).abs() < 0.02, "std was {}", t.std());
    }

    #[test]
    fn xavier_respects_bound() {
        let t = Init::XavierUniform {
            fan_in: 3,
            fan_out: 3,
        }
        .sample(&[1000], &mut rng(5));
        let a = (6.0f32 / 6.0).sqrt();
        assert!(t.max() < a && t.min() > -a);
    }

    #[test]
    fn constant_and_zeros() {
        assert_eq!(
            Init::Constant(4.0).sample(&[3], &mut rng(0)).as_slice(),
            &[4.0; 3]
        );
        assert_eq!(Init::Zeros.sample(&[3], &mut rng(0)).as_slice(), &[0.0; 3]);
    }
}
