//! Error type for tensor operations.

use std::fmt;

/// Errors returned by fallible tensor operations.
///
/// All variants carry enough context to diagnose the failing call without a
/// debugger; the `Display` output is lowercase and concise per Rust API
/// guidelines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Shape expected by the operation.
        expected: Vec<usize>,
        /// Shape actually supplied.
        actual: Vec<usize>,
    },
    /// The data buffer length does not match the number of elements implied
    /// by the shape.
    LengthMismatch {
        /// Number of elements implied by the shape.
        expected: usize,
        /// Length of the supplied buffer.
        actual: usize,
    },
    /// The operation requires a tensor of a particular rank.
    RankMismatch {
        /// Rank expected by the operation.
        expected: usize,
        /// Rank of the supplied tensor.
        actual: usize,
    },
    /// Inner dimensions of a matrix product did not agree.
    MatmulDimMismatch {
        /// Columns of the left operand.
        left_cols: usize,
        /// Rows of the right operand.
        right_rows: usize,
    },
    /// An axis index was out of range for the tensor rank.
    AxisOutOfRange {
        /// The offending axis.
        axis: usize,
        /// Rank of the tensor.
        rank: usize,
    },
    /// A convolution/pooling geometry was inconsistent (e.g. kernel larger
    /// than padded input).
    InvalidGeometry(String),
    /// An argument failed validation (empty shape, zero dimension where
    /// nonzero is required, non-finite scalar, ...).
    InvalidArgument(String),
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { expected, actual } => {
                write!(f, "shape mismatch: expected {expected:?}, got {actual:?}")
            }
            TensorError::LengthMismatch { expected, actual } => {
                write!(
                    f,
                    "buffer length {actual} does not match shape volume {expected}"
                )
            }
            TensorError::RankMismatch { expected, actual } => {
                write!(
                    f,
                    "rank mismatch: expected rank {expected}, got rank {actual}"
                )
            }
            TensorError::MatmulDimMismatch {
                left_cols,
                right_rows,
            } => {
                write!(
                    f,
                    "matmul inner dimensions disagree: {left_cols} vs {right_rows}"
                )
            }
            TensorError::AxisOutOfRange { axis, rank } => {
                write!(f, "axis {axis} out of range for rank {rank}")
            }
            TensorError::InvalidGeometry(msg) => write!(f, "invalid geometry: {msg}"),
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_contextful() {
        let e = TensorError::ShapeMismatch {
            expected: vec![2, 2],
            actual: vec![3],
        };
        let s = e.to_string();
        assert!(s.contains("[2, 2]"));
        assert!(s.contains("[3]"));
        assert!(s.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn matmul_mismatch_mentions_both_dims() {
        let e = TensorError::MatmulDimMismatch {
            left_cols: 3,
            right_rows: 4,
        };
        let s = e.to_string();
        assert!(s.contains('3') && s.contains('4'));
    }
}
