//! Parallel dispatch helpers shared by the kernels in [`crate::ops`].
//!
//! With the on-by-default `parallel` cargo feature, kernels split their
//! output into contiguous chunks and run them on rayon workers; without
//! it they compile to plain sequential loops. Both paths funnel through
//! the same per-chunk microkernels, and chunking never reorders the
//! per-element accumulation sequence, so results are **bit-identical**
//! between the serial build, the parallel build, and any thread count.

/// Number of worker threads parallel kernels may use (1 when the
/// `parallel` feature is disabled). Controlled at runtime by
/// `RAYON_NUM_THREADS` or an enclosing `ThreadPool::install`.
#[cfg(feature = "parallel")]
pub fn num_threads() -> usize {
    rayon::current_num_threads()
}

/// Number of worker threads parallel kernels may use (1 when the
/// `parallel` feature is disabled).
#[cfg(not(feature = "parallel"))]
pub fn num_threads() -> usize {
    1
}

/// Runs `f(chunk_index, chunk)` over consecutive `chunk_len`-sized
/// chunks of `data` — in parallel when the `parallel` feature is on and
/// more than one chunk exists, sequentially otherwise. Chunk indices
/// match `data.chunks_mut(chunk_len).enumerate()` exactly.
#[cfg(feature = "parallel")]
pub(crate) fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync + Send + Clone,
{
    use rayon::prelude::*;
    if chunk_len == 0 || data.is_empty() {
        return;
    }
    if data.len() <= chunk_len || rayon::current_num_threads() <= 1 {
        for (i, c) in data.chunks_mut(chunk_len).enumerate() {
            f(i, c);
        }
        return;
    }
    data.par_chunks_mut(chunk_len)
        .enumerate()
        .for_each(|(i, c)| f(i, c));
}

/// Sequential fallback of [`for_each_chunk_mut`] (no `parallel` feature).
#[cfg(not(feature = "parallel"))]
pub(crate) fn for_each_chunk_mut<T, F>(data: &mut [T], chunk_len: usize, f: F)
where
    F: Fn(usize, &mut [T]),
{
    if chunk_len == 0 || data.is_empty() {
        return;
    }
    for (i, c) in data.chunks_mut(chunk_len).enumerate() {
        f(i, c);
    }
}
