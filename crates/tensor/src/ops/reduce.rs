//! Reductions and row-wise softmax.

use crate::{Result, Tensor};

/// Per-channel first and second moments of an NCHW tensor, as used by batch
/// normalization.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelStats {
    /// Per-channel mean over the batch and spatial dimensions, length `C`.
    pub mean: Vec<f32>,
    /// Per-channel population variance, length `C`.
    pub var: Vec<f32>,
    /// Number of elements reduced per channel (`N·H·W`).
    pub count: usize,
}

/// Computes per-channel mean/variance of an NCHW tensor.
///
/// # Errors
///
/// Returns a rank error for non-4D input.
///
/// # Example
///
/// ```
/// use ccq_tensor::{ops::channel_stats, Tensor};
///
/// let x = Tensor::from_vec(vec![1.0, 3.0, 2.0, 2.0], &[2, 2, 1, 1])?;
/// let s = channel_stats(&x)?;
/// assert_eq!(s.mean, vec![1.5, 2.5]);
/// # Ok::<(), ccq_tensor::TensorError>(())
/// ```
pub fn channel_stats(x: &Tensor) -> Result<ChannelStats> {
    x.shape_obj().expect_rank(4)?;
    let [n, c, h, w] = [x.shape()[0], x.shape()[1], x.shape()[2], x.shape()[3]];
    let per = n * h * w;
    let mut mean = vec![0.0f32; c];
    let mut var = vec![0.0f32; c];
    let xv = x.as_slice();
    let plane = h * w;
    for ci in 0..c {
        let mut sum = 0.0f32;
        let mut sq = 0.0f32;
        for ni in 0..n {
            let base = (ni * c + ci) * plane;
            for &v in &xv[base..base + plane] {
                sum += v;
                sq += v * v;
            }
        }
        let m = if per > 0 { sum / per as f32 } else { 0.0 };
        mean[ci] = m;
        var[ci] = if per > 0 {
            (sq / per as f32 - m * m).max(0.0)
        } else {
            0.0
        };
    }
    Ok(ChannelStats {
        mean,
        var,
        count: per,
    })
}

/// Sums a matrix over its rows, returning a `[cols]` vector tensor.
///
/// # Errors
///
/// Returns a rank error for non-matrix input.
pub fn sum_axis0(x: &Tensor) -> Result<Tensor> {
    x.shape_obj().expect_rank(2)?;
    let (rows, cols) = (x.shape()[0], x.shape()[1]);
    let mut out = Tensor::zeros(&[cols]);
    let xv = x.as_slice();
    let ov = out.as_mut_slice();
    for r in 0..rows {
        for (o, &v) in ov.iter_mut().zip(&xv[r * cols..(r + 1) * cols]) {
            *o += v;
        }
    }
    Ok(out)
}

/// Numerically-stable row-wise softmax of a `[rows, cols]` matrix.
///
/// # Errors
///
/// Returns a rank error for non-matrix input.
pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
    x.shape_obj().expect_rank(2)?;
    let (rows, cols) = (x.shape()[0], x.shape()[1]);
    let mut out = x.clone();
    let ov = out.as_mut_slice();
    for r in 0..rows {
        let row = &mut ov[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    Ok(out)
}

/// Numerically-stable row-wise log-softmax of a `[rows, cols]` matrix.
///
/// # Errors
///
/// Returns a rank error for non-matrix input.
pub fn log_softmax_rows(x: &Tensor) -> Result<Tensor> {
    x.shape_obj().expect_rank(2)?;
    let (rows, cols) = (x.shape()[0], x.shape()[1]);
    let mut out = x.clone();
    let ov = out.as_mut_slice();
    for r in 0..rows {
        let row = &mut ov[r * cols..(r + 1) * cols];
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let log_sum = row.iter().map(|v| (v - m).exp()).sum::<f32>().ln() + m;
        for v in row.iter_mut() {
            *v -= log_sum;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_stats_basic() {
        // 2 samples, 2 channels, 1x2 spatial.
        let x = Tensor::from_vec(
            vec![1.0, 3.0, 10.0, 10.0, 5.0, 7.0, 10.0, 10.0],
            &[2, 2, 1, 2],
        )
        .unwrap();
        let s = channel_stats(&x).unwrap();
        assert_eq!(s.count, 4);
        assert_eq!(s.mean, vec![4.0, 10.0]);
        // channel 0 values: 1,3,5,7 → var 5
        assert!((s.var[0] - 5.0).abs() < 1e-5);
        assert!((s.var[1]).abs() < 1e-5);
    }

    #[test]
    fn channel_stats_variance_never_negative() {
        let x = Tensor::full(&[4, 3, 8, 8], 123.456);
        let s = channel_stats(&x).unwrap();
        assert!(s.var.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn sum_axis0_matches_manual() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let s = sum_axis0(&x).unwrap();
        assert_eq!(s.as_slice(), &[5.0, 7.0, 9.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0], &[2, 3]).unwrap();
        let s = softmax_rows(&x).unwrap();
        for r in 0..2 {
            let row_sum: f32 = s.as_slice()[r * 3..(r + 1) * 3].iter().sum();
            assert!((row_sum - 1.0).abs() < 1e-5);
        }
        // Monotone in the logits.
        assert!(s.at(&[0, 2]) > s.at(&[0, 1]));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let x = Tensor::from_vec(vec![1000.0, 1001.0], &[1, 2]).unwrap();
        let s = softmax_rows(&x).unwrap();
        assert!(s.all_finite());
        assert!((s.at(&[0, 0]) + s.at(&[0, 1]) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let x = Tensor::from_vec(vec![0.3, -1.2, 2.0, 0.0, 0.5, -0.5], &[2, 3]).unwrap();
        let a = log_softmax_rows(&x).unwrap();
        let b = softmax_rows(&x).unwrap().map(f32::ln);
        for (u, v) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((u - v).abs() < 1e-5);
        }
    }
}
