//! Dense matrix products (row-major, `f32`).

use crate::{Result, Tensor, TensorError};

fn check_rank2(t: &Tensor) -> Result<(usize, usize)> {
    t.shape_obj().expect_rank(2)?;
    Ok((t.shape()[0], t.shape()[1]))
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Uses the cache-friendly i-k-j loop order with an accumulation row, which
/// is adequate for the layer sizes in this workspace.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ccq_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), ccq_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a)?;
    let (k2, n) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (p, &aip) in arow.iter().enumerate() {
            if aip == 0.0 {
                continue;
            }
            let brow = &bv[p * n..(p + 1) * n];
            for (o, &bpj) in orow.iter_mut().zip(brow) {
                *o += aip * bpj;
            }
        }
    }
    Ok(out)
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` without materializing `Aᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the shared `k` dimensions
/// disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a)?;
    let (k2, n) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for (i, &api) in arow.iter().enumerate() {
            if api == 0.0 {
                continue;
            }
            let orow = &mut ov[i * n..(i + 1) * n];
            for (o, &bpj) in orow.iter_mut().zip(brow) {
                *o += api * bpj;
            }
        }
    }
    Ok(out)
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` without materializing `Bᵀ`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the shared `k` dimensions
/// disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a)?;
    let (n, k2) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    let (av, bv) = (a.as_slice(), b.as_slice());
    let ov = out.as_mut_slice();
    for i in 0..m {
        let arow = &av[i * k..(i + 1) * k];
        let orow = &mut ov[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            *o += acc;
        }
    }
    Ok(out)
}

/// Transpose of a matrix.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a)?;
    let av = a.as_slice();
    let mut out = Tensor::zeros(&[n, m]);
    let ov = out.as_mut_slice();
    for i in 0..m {
        for j in 0..n {
            ov[j * m + i] = av[i * n + j];
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch {
                left_cols: 3,
                right_rows: 4
            })
        ));
    }

    #[test]
    fn matmul_rejects_non_matrix() {
        let a = Tensor::zeros(&[2, 3, 4]);
        assert!(matches!(
            matmul(&a, &Tensor::eye(2)),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let via_t = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        let direct = matmul_at_b(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0, 9.0, 10.0], &[3, 2]);
        let via_t = matmul(&a, &transpose2d(&b).unwrap()).unwrap();
        let direct = matmul_a_bt(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_round_trips() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let back = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
    }
}
