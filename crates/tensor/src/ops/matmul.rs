//! Dense matrix products (row-major, `f32`).
//!
//! Every product is computed by a per-row-chunk microkernel that both
//! the serial and the parallel dispatch paths share. Parallelism (the
//! `parallel` feature) only partitions the *output rows* into
//! contiguous chunks; within a chunk the microkernel accumulates each
//! output element over `k` in strictly ascending order, so the result
//! is bit-identical at any thread count and with the feature disabled.
//!
//! The microkernels are register-blocked: `matmul` streams each `B` row
//! through [`MR`] output rows at once (amortizing the `B` loads that
//! dominate the naive i-k-j loop), and `matmul_a_bt` computes [`MR`]
//! dot products per pass over an `A` row. Blocking groups *rows*, never
//! partial sums, which is what preserves bit-identity.
//!
//! Above `PACK_MIN_FLOPS`, `matmul` and `matmul_a_bt` switch to a
//! BLIS-style *packed* path: `B` is packed once into k-major panels of
//! [`NR`] columns, each [`MR`]-row block of `A` is packed p-major, and an
//! unrolled [`MR`]×[`NR`] register kernel accumulates 32 independent
//! dot products per tile. Ragged edges are zero-padded at pack time (a
//! padded lane accumulates garbage that is simply never written back),
//! so one kernel covers every shape. Packing is a layout change only:
//! each output element is still one accumulator fed over `k` in strictly
//! ascending order, so the packed path is bit-identical to the unpacked
//! kernels and to a naive triple loop.

use crate::par::{for_each_chunk_mut, num_threads};
use crate::{Result, Tensor, TensorError};

/// Register-blocked row group size for the microkernels.
const MR: usize = 4;

/// Column-panel width of the packed microkernel (one 8-lane FMA vector).
const NR: usize = 8;

/// Square tile edge for the cache-blocked transpose.
const TRANSPOSE_TILE: usize = 32;

/// Minimum number of multiply-adds before a kernel bothers spawning
/// workers; below this the split overhead dominates.
const PAR_MIN_FLOPS: usize = 1 << 15;

/// Minimum number of multiply-adds before the packed-panel path pays for
/// its packing buffers; below this the plain register-blocked kernels
/// win.
const PACK_MIN_FLOPS: usize = 1 << 14;

fn check_rank2(t: &Tensor) -> Result<(usize, usize)> {
    t.shape_obj().expect_rank(2)?;
    Ok((t.shape()[0], t.shape()[1]))
}

/// Rows per chunk so that `rows` splits into at most `num_threads()`
/// pieces, or one piece when the total work is too small to split.
fn row_chunk(rows: usize, flops: usize) -> usize {
    let threads = num_threads();
    if threads <= 1 || rows <= 1 || flops < PAR_MIN_FLOPS {
        return rows.max(1);
    }
    rows.div_ceil(threads)
}

/// Computes output rows `[row0, row0 + rows)` of `C = A·B` into
/// `ov_rows` (exactly those rows of `C`). `A: [m, k]`, `B: [k, n]`.
fn matmul_rows(av: &[f32], bv: &[f32], ov_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = ov_rows.len() / n;
    let mut i = 0;
    while i < rows {
        let block = (rows - i).min(MR);
        let a_block = &av[(row0 + i) * k..(row0 + i + block) * k];
        let out_block = &mut ov_rows[i * n..(i + block) * n];
        if block == MR {
            // Four output rows per pass over each B row: one load of
            // b[j] feeds four fused multiply-adds.
            let (o0, rest) = out_block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            for p in 0..k {
                let (a0, a1, a2, a3) = (
                    a_block[p],
                    a_block[k + p],
                    a_block[2 * k + p],
                    a_block[3 * k + p],
                );
                let brow = &bv[p * n..(p + 1) * n];
                for j in 0..n {
                    let b = brow[j];
                    o0[j] += a0 * b;
                    o1[j] += a1 * b;
                    o2[j] += a2 * b;
                    o3[j] += a3 * b;
                }
            }
        } else {
            for bi in 0..block {
                let arow = &a_block[bi * k..(bi + 1) * k];
                let orow = &mut out_block[bi * n..(bi + 1) * n];
                for (p, &aip) in arow.iter().enumerate() {
                    let brow = &bv[p * n..(p + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += aip * b;
                    }
                }
            }
        }
        i += block;
    }
}

/// `B` packed into k-major column panels for the [`MR`]×[`NR`] kernel.
///
/// Panel `jp` covers output columns `[jp·NR, jp·NR + NR)` and stores
/// `bp[p·NR + jj] = B[p, jp·NR + jj]` contiguously; columns past `n` are
/// zero-padded so the kernel never branches on the ragged edge.
struct PackedB {
    data: Vec<f32>,
    k: usize,
    n: usize,
}

impl PackedB {
    /// Packs `B: [k, n]` (the `matmul` operand).
    fn from_b(bv: &[f32], k: usize, n: usize) -> Self {
        let panels = n.div_ceil(NR);
        let mut data = vec![0.0f32; panels * k * NR];
        for jp in 0..panels {
            let j0 = jp * NR;
            let w = (n - j0).min(NR);
            let panel = &mut data[jp * k * NR..(jp + 1) * k * NR];
            for p in 0..k {
                let brow = &bv[p * n + j0..p * n + j0 + w];
                panel[p * NR..p * NR + w].copy_from_slice(brow);
            }
        }
        PackedB { data, k, n }
    }

    /// Packs `B: [n, k]` as its transpose (the `matmul_a_bt` operand):
    /// panel lane `jj` holds row `j0 + jj` of `B`, p-major.
    fn from_bt(bv: &[f32], k: usize, n: usize) -> Self {
        let panels = n.div_ceil(NR);
        let mut data = vec![0.0f32; panels * k * NR];
        for jp in 0..panels {
            let j0 = jp * NR;
            let w = (n - j0).min(NR);
            let panel = &mut data[jp * k * NR..(jp + 1) * k * NR];
            for jj in 0..w {
                let brow = &bv[(j0 + jj) * k..(j0 + jj + 1) * k];
                for (p, &b) in brow.iter().enumerate() {
                    panel[p * NR + jj] = b;
                }
            }
        }
        PackedB { data, k, n }
    }

    /// The packed panel covering output columns `[jp·NR, jp·NR + NR)`.
    fn panel(&self, jp: usize) -> &[f32] {
        &self.data[jp * self.k * NR..(jp + 1) * self.k * NR]
    }
}

/// Packs rows `[i0, i0 + h)` of `A: [m, k]` p-major into `ap`
/// (`ap[p·MR + ii] = A[i0 + ii, p]`), zero-padding rows past `h`.
fn pack_a_block(av: &[f32], ap: &mut [f32], k: usize, i0: usize, h: usize) {
    ap.fill(0.0);
    for ii in 0..h {
        let arow = &av[(i0 + ii) * k..(i0 + ii + 1) * k];
        for (p, &a) in arow.iter().enumerate() {
            ap[p * MR + ii] = a;
        }
    }
}

/// The [`MR`]×[`NR`] register microkernel: 32 independent accumulators,
/// each fed `a·b` products over `p` in strictly ascending order — the
/// same single-chain accumulation as a naive triple loop, so the result
/// is bit-identical to the unpacked kernels.
#[inline]
fn kernel_mr_nr(ap: &[f32], bp: &[f32], k: usize) -> [[f32; NR]; MR] {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let a = &ap[p * MR..(p + 1) * MR];
        let b = &bp[p * NR..(p + 1) * NR];
        for (accr, &ai) in acc.iter_mut().zip(a) {
            for (c, &bj) in accr.iter_mut().zip(b) {
                *c += ai * bj;
            }
        }
    }
    acc
}

/// Computes output rows `[row0, row0 + rows)` of `C = A·panel(B)` into
/// `ov_rows` from pre-packed `B` panels. The chunk's rows of `A` are
/// packed once into [`MR`]-row p-major blocks in `ap`, then the `B`
/// panel runs as the *outer* loop so one `k×NR` panel stays cache-hot
/// while the packed `A` blocks stream past it.
fn matmul_rows_packed(
    av: &[f32],
    pb: &PackedB,
    ov_rows: &mut [f32],
    row0: usize,
    ap: &mut Vec<f32>,
) {
    let (k, n) = (pb.k, pb.n);
    if n == 0 {
        return;
    }
    let rows = ov_rows.len() / n;
    let blocks = rows.div_ceil(MR);
    let block_len = k * MR;
    ap.clear();
    ap.resize(blocks * block_len, 0.0);
    for ib in 0..blocks {
        let h = (rows - ib * MR).min(MR);
        pack_a_block(
            av,
            &mut ap[ib * block_len..(ib + 1) * block_len],
            k,
            row0 + ib * MR,
            h,
        );
    }
    for jp in 0..n.div_ceil(NR) {
        let j0 = jp * NR;
        let w = (n - j0).min(NR);
        let panel = pb.panel(jp);
        for ib in 0..blocks {
            let i = ib * MR;
            let h = (rows - i).min(MR);
            let acc = kernel_mr_nr(&ap[ib * block_len..(ib + 1) * block_len], panel, k);
            for (ii, accr) in acc.iter().enumerate().take(h) {
                let orow = &mut ov_rows[(i + ii) * n + j0..(i + ii) * n + j0 + w];
                orow.copy_from_slice(&accr[..w]);
            }
        }
    }
}

/// Dispatches the packed-panel path over row chunks: `pb` is shared
/// read-only across workers, each chunk owns its `A` scratch buffer.
fn matmul_packed_dispatch(av: &[f32], pb: &PackedB, out: &mut Tensor, m: usize) {
    let (k, n) = (pb.k, pb.n);
    let chunk = row_chunk(m, m * n * k);
    for_each_chunk_mut(out.as_mut_slice(), chunk * n, move |ci, ov_rows| {
        let mut ap = Vec::new();
        matmul_rows_packed(av, pb, ov_rows, ci * chunk, &mut ap);
    });
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Row-chunk parallel with a register-blocked microkernel (packed-panel
/// above `PACK_MIN_FLOPS`); bit-identical
/// across thread counts and with the `parallel` feature disabled.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ccq_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), ccq_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a)?;
    let (k2, n) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    if m * n * k >= PACK_MIN_FLOPS {
        let pb = PackedB::from_b(bv, k, n);
        matmul_packed_dispatch(av, &pb, &mut out, m);
        return Ok(out);
    }
    let chunk = row_chunk(m, m * n * k);
    for_each_chunk_mut(out.as_mut_slice(), chunk * n, move |ci, ov_rows| {
        matmul_rows(av, bv, ov_rows, ci * chunk, k, n);
    });
    Ok(out)
}

/// Computes output rows `[row0, row0 + rows)` of `C = Aᵀ·B` into
/// `ov_rows`. `A: [k, m]`, `B: [k, n]`; row `i` of `C` reads column
/// `row0 + i` of `A`.
fn matmul_at_b_rows(
    av: &[f32],
    bv: &[f32],
    ov_rows: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let rows = ov_rows.len() / n;
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for i in 0..rows {
            let api = arow[row0 + i];
            // ccq-lint: allow(float-eq) — exact zero skips an axpy that cannot change the output
            if api == 0.0 {
                continue; // axpy of zero; skip the memory traffic
            }
            let orow = &mut ov_rows[i * n..(i + 1) * n];
            for (o, &b) in orow.iter_mut().zip(brow) {
                *o += api * b;
            }
        }
    }
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` without materializing `Aᵀ`.
///
/// Row-chunk parallel; bit-identical across thread counts.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the shared `k` dimensions
/// disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a)?;
    let (k2, n) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let chunk = row_chunk(m, m * n * k);
    for_each_chunk_mut(out.as_mut_slice(), chunk * n, move |ci, ov_rows| {
        matmul_at_b_rows(av, bv, ov_rows, ci * chunk, k, m, n);
    });
    Ok(out)
}

/// Computes output rows `[row0, row0 + rows)` of `C = A·Bᵀ` into
/// `ov_rows`. `A: [m, k]`, `B: [n, k]`.
fn matmul_a_bt_rows(av: &[f32], bv: &[f32], ov_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = ov_rows.len() / n;
    for i in 0..rows {
        let arow = &av[(row0 + i) * k..(row0 + i + 1) * k];
        let orow = &mut ov_rows[i * n..(i + 1) * n];
        let mut j = 0;
        // MR dot products per pass over arow: each a[p] load feeds
        // four B rows. Each dot still accumulates over p in ascending
        // order into a single accumulator, preserving bit-identity
        // with the scalar tail below.
        while j + MR <= n {
            let b0 = &bv[j * k..(j + 1) * k];
            let b1 = &bv[(j + 1) * k..(j + 2) * k];
            let b2 = &bv[(j + 2) * k..(j + 3) * k];
            let b3 = &bv[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for p in 0..k {
                let ap = arow[p];
                s0 += ap * b0[p];
                s1 += ap * b1[p];
                s2 += ap * b2[p];
                s3 += ap * b3[p];
            }
            orow[j] += s0;
            orow[j + 1] += s1;
            orow[j + 2] += s2;
            orow[j + 3] += s3;
            j += MR;
        }
        while j < n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            orow[j] += acc;
            j += 1;
        }
    }
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` without materializing `Bᵀ`.
///
/// Row-chunk parallel; bit-identical across thread counts.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the shared `k` dimensions
/// disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a)?;
    let (n, k2) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    if m * n * k >= PACK_MIN_FLOPS {
        let pb = PackedB::from_bt(bv, k, n);
        matmul_packed_dispatch(av, &pb, &mut out, m);
        return Ok(out);
    }
    let chunk = row_chunk(m, m * n * k);
    for_each_chunk_mut(out.as_mut_slice(), chunk * n, move |ci, ov_rows| {
        matmul_a_bt_rows(av, bv, ov_rows, ci * chunk, k, n);
    });
    Ok(out)
}

/// Fills output rows `[jrow0, jrow0 + rows)` of the transpose (each of
/// length `m`) from `A: [m, n]`, tile by tile so both the strided reads
/// and the writes stay within cache lines of a [`TRANSPOSE_TILE`]²
/// block.
fn transpose_rows(av: &[f32], ov_rows: &mut [f32], jrow0: usize, m: usize, n: usize) {
    if m == 0 {
        return;
    }
    let rows = ov_rows.len() / m;
    let mut ib = 0;
    while ib < m {
        let ie = (ib + TRANSPOSE_TILE).min(m);
        let mut jb = 0;
        while jb < rows {
            let je = (jb + TRANSPOSE_TILE).min(rows);
            for i in ib..ie {
                let in_row = &av[i * n..(i + 1) * n];
                for j in jb..je {
                    ov_rows[j * m + i] = in_row[jrow0 + j];
                }
            }
            jb = je;
        }
        ib = ie;
    }
}

/// Transpose of a matrix, tiled for cache locality (the naive loop's
/// column-stride writes thrash on tall matrices) and row-chunk parallel.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a)?;
    let mut out = Tensor::zeros(&[n, m]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let av = a.as_slice();
    let chunk = row_chunk(n, m * n);
    for_each_chunk_mut(out.as_mut_slice(), chunk * m, move |ci, ov_rows| {
        transpose_rows(av, ov_rows, ci * chunk, m, n);
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch {
                left_cols: 3,
                right_rows: 4
            })
        ));
    }

    #[test]
    fn matmul_rejects_non_matrix() {
        let a = Tensor::zeros(&[2, 3, 4]);
        assert!(matches!(
            matmul(&a, &Tensor::eye(2)),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let via_t = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        let direct = matmul_at_b(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0, 9.0, 10.0], &[3, 2]);
        let via_t = matmul(&a, &transpose2d(&b).unwrap()).unwrap();
        let direct = matmul_a_bt(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_round_trips() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let back = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
    }

    /// Integer-valued matrices larger than the tile/register blocks:
    /// blocked kernels must agree exactly with a reference triple loop
    /// (all intermediate sums are exactly representable).
    #[test]
    fn blocked_kernels_match_reference_on_odd_shapes() {
        // 7 rows exercises the MR=4 block plus a 3-row tail; 70 columns
        // exercises the a_bt 4-dot block plus a 2-dot tail.
        let (m, k, n) = (7, 9, 70);
        let a = Tensor::from_fn(&[m, k], |i| ((i * 7 + 3) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 5 + 1) % 11) as f32 - 5.0);
        let c = matmul(&a, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                assert_eq!(c.at(&[i, j]), acc, "matmul mismatch at ({i}, {j})");
            }
        }
        let at = transpose2d(&a).unwrap(); // [k, m] viewed as Aᵀ input
        assert_eq!(matmul_at_b(&at, &b).unwrap(), c);
        let bt = transpose2d(&b).unwrap(); // [n, k]
        assert_eq!(matmul_a_bt(&a, &bt).unwrap(), c);
    }

    /// Packed-panel kernels on shapes the `PACK_MIN_FLOPS` dispatch
    /// would not normally route to them: 1×1, ragged row/column tails,
    /// and empty dims — exact match vs a naive triple loop on
    /// integer-valued data.
    #[test]
    fn packed_kernels_match_naive_on_edge_shapes() {
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (1, 3, 1),
            (4, 8, 8),
            (5, 3, 9),  // MR tail of 1 row, NR tail of 1 column
            (7, 9, 70), // several panels plus a 6-column tail
            (3, 1, 17),
            (0, 3, 4),
            (4, 0, 4),
            (4, 3, 0),
            (33, 40, 70),
        ] {
            let a = Tensor::from_fn(&[m, k], |i| ((i * 7 + 3) % 13) as f32 - 6.0);
            let b = Tensor::from_fn(&[k, n], |i| ((i * 5 + 1) % 11) as f32 - 5.0);
            let mut packed = Tensor::zeros(&[m, n]);
            let pb = PackedB::from_b(b.as_slice(), k, n);
            matmul_packed_dispatch(a.as_slice(), &pb, &mut packed, m);
            for i in 0..m {
                for j in 0..n {
                    let mut acc = 0.0f32;
                    for p in 0..k {
                        acc += a.at(&[i, p]) * b.at(&[p, j]);
                    }
                    assert_eq!(packed.at(&[i, j]), acc, "({i}, {j}) of {m}x{k}x{n}");
                }
            }
            let bt = transpose2d(&b).unwrap(); // [n, k]
            let mut packed_bt = Tensor::zeros(&[m, n]);
            let pbt = PackedB::from_bt(bt.as_slice(), k, n);
            matmul_packed_dispatch(a.as_slice(), &pbt, &mut packed_bt, m);
            assert_eq!(packed_bt, packed, "a_bt pack of {m}x{k}x{n}");
        }
    }

    /// The packed path is *bit*-identical to the unpacked register
    /// kernels on values whose sums are not exactly representable — the
    /// accumulation order is the contract, not just the math.
    #[test]
    fn packed_path_is_bit_identical_to_unpacked() {
        let (m, k, n) = (13, 21, 29);
        let a = Tensor::from_fn(&[m, k], |i| (i as f32 * 0.37 + 0.11).sin());
        let b = Tensor::from_fn(&[k, n], |i| (i as f32 * 0.53 - 0.07).cos());
        let mut unpacked = Tensor::zeros(&[m, n]);
        matmul_rows(a.as_slice(), b.as_slice(), unpacked.as_mut_slice(), 0, k, n);
        let mut packed = Tensor::zeros(&[m, n]);
        let pb = PackedB::from_b(b.as_slice(), k, n);
        matmul_packed_dispatch(a.as_slice(), &pb, &mut packed, m);
        for (x, y) in packed.as_slice().iter().zip(unpacked.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The a_bt flavor against its unpacked kernel, same contract.
        let bt = transpose2d(&b).unwrap();
        let mut unpacked_bt = Tensor::zeros(&[m, n]);
        matmul_a_bt_rows(
            a.as_slice(),
            bt.as_slice(),
            unpacked_bt.as_mut_slice(),
            0,
            k,
            n,
        );
        let mut packed_bt = Tensor::zeros(&[m, n]);
        let pbt = PackedB::from_bt(bt.as_slice(), k, n);
        matmul_packed_dispatch(a.as_slice(), &pbt, &mut packed_bt, m);
        for (x, y) in packed_bt.as_slice().iter().zip(unpacked_bt.as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    /// Shapes above `PACK_MIN_FLOPS` take the packed path through the
    /// public API and must agree exactly with the reference loop.
    #[test]
    fn public_matmul_packed_threshold_crossing() {
        let (m, k, n) = (33, 40, 70); // 92_400 flops ≥ PACK_MIN_FLOPS
        assert!(m * k * n >= PACK_MIN_FLOPS);
        let a = Tensor::from_fn(&[m, k], |i| ((i * 11 + 2) % 17) as f32 - 8.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 3 + 5) % 19) as f32 - 9.0);
        let c = matmul(&a, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                assert_eq!(c.at(&[i, j]), acc, "({i}, {j})");
            }
        }
        let bt = transpose2d(&b).unwrap();
        assert_eq!(matmul_a_bt(&a, &bt).unwrap(), c);
    }

    /// Tiled transpose on shapes larger than one tile, including
    /// non-multiples of the tile edge.
    #[test]
    fn tiled_transpose_matches_naive() {
        for (m, n) in [(1, 1), (3, 100), (100, 3), (33, 65), (64, 64)] {
            let a = Tensor::from_fn(&[m, n], |i| i as f32);
            let tr = transpose2d(&a).unwrap();
            assert_eq!(tr.shape(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(tr.at(&[j, i]), a.at(&[i, j]), "({i}, {j}) of {m}x{n}");
                }
            }
        }
    }
}
