//! Dense matrix products (row-major, `f32`).
//!
//! Every product is computed by a per-row-chunk microkernel that both
//! the serial and the parallel dispatch paths share. Parallelism (the
//! `parallel` feature) only partitions the *output rows* into
//! contiguous chunks; within a chunk the microkernel accumulates each
//! output element over `k` in strictly ascending order, so the result
//! is bit-identical at any thread count and with the feature disabled.
//!
//! The microkernels are register-blocked: `matmul` streams each `B` row
//! through [`MR`] output rows at once (amortizing the `B` loads that
//! dominate the naive i-k-j loop), and `matmul_a_bt` computes [`MR`]
//! dot products per pass over an `A` row. Blocking groups *rows*, never
//! partial sums, which is what preserves bit-identity.

use crate::par::{for_each_chunk_mut, num_threads};
use crate::{Result, Tensor, TensorError};

/// Register-blocked row group size for the microkernels.
const MR: usize = 4;

/// Square tile edge for the cache-blocked transpose.
const TRANSPOSE_TILE: usize = 32;

/// Minimum number of multiply-adds before a kernel bothers spawning
/// workers; below this the split overhead dominates.
const PAR_MIN_FLOPS: usize = 1 << 15;

fn check_rank2(t: &Tensor) -> Result<(usize, usize)> {
    t.shape_obj().expect_rank(2)?;
    Ok((t.shape()[0], t.shape()[1]))
}

/// Rows per chunk so that `rows` splits into at most `num_threads()`
/// pieces, or one piece when the total work is too small to split.
fn row_chunk(rows: usize, flops: usize) -> usize {
    let threads = num_threads();
    if threads <= 1 || rows <= 1 || flops < PAR_MIN_FLOPS {
        return rows.max(1);
    }
    rows.div_ceil(threads)
}

/// Computes output rows `[row0, row0 + rows)` of `C = A·B` into
/// `ov_rows` (exactly those rows of `C`). `A: [m, k]`, `B: [k, n]`.
fn matmul_rows(av: &[f32], bv: &[f32], ov_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = ov_rows.len() / n;
    let mut i = 0;
    while i < rows {
        let block = (rows - i).min(MR);
        let a_block = &av[(row0 + i) * k..(row0 + i + block) * k];
        let out_block = &mut ov_rows[i * n..(i + block) * n];
        if block == MR {
            // Four output rows per pass over each B row: one load of
            // b[j] feeds four fused multiply-adds.
            let (o0, rest) = out_block.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            for p in 0..k {
                let (a0, a1, a2, a3) = (
                    a_block[p],
                    a_block[k + p],
                    a_block[2 * k + p],
                    a_block[3 * k + p],
                );
                let brow = &bv[p * n..(p + 1) * n];
                for j in 0..n {
                    let b = brow[j];
                    o0[j] += a0 * b;
                    o1[j] += a1 * b;
                    o2[j] += a2 * b;
                    o3[j] += a3 * b;
                }
            }
        } else {
            for bi in 0..block {
                let arow = &a_block[bi * k..(bi + 1) * k];
                let orow = &mut out_block[bi * n..(bi + 1) * n];
                for (p, &aip) in arow.iter().enumerate() {
                    let brow = &bv[p * n..(p + 1) * n];
                    for (o, &b) in orow.iter_mut().zip(brow) {
                        *o += aip * b;
                    }
                }
            }
        }
        i += block;
    }
}

/// `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// Row-chunk parallel with a register-blocked microkernel; bit-identical
/// across thread counts and with the `parallel` feature disabled.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the inner dimensions disagree.
///
/// # Example
///
/// ```
/// use ccq_tensor::{ops::matmul, Tensor};
///
/// let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
/// let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2])?;
/// let c = matmul(&a, &b)?;
/// assert_eq!(c.as_slice(), &[19.0, 22.0, 43.0, 50.0]);
/// # Ok::<(), ccq_tensor::TensorError>(())
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a)?;
    let (k2, n) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let chunk = row_chunk(m, m * n * k);
    for_each_chunk_mut(out.as_mut_slice(), chunk * n, move |ci, ov_rows| {
        matmul_rows(av, bv, ov_rows, ci * chunk, k, n);
    });
    Ok(out)
}

/// Computes output rows `[row0, row0 + rows)` of `C = Aᵀ·B` into
/// `ov_rows`. `A: [k, m]`, `B: [k, n]`; row `i` of `C` reads column
/// `row0 + i` of `A`.
fn matmul_at_b_rows(
    av: &[f32],
    bv: &[f32],
    ov_rows: &mut [f32],
    row0: usize,
    k: usize,
    m: usize,
    n: usize,
) {
    if n == 0 {
        return;
    }
    let rows = ov_rows.len() / n;
    for p in 0..k {
        let arow = &av[p * m..(p + 1) * m];
        let brow = &bv[p * n..(p + 1) * n];
        for i in 0..rows {
            let api = arow[row0 + i];
            // ccq-lint: allow(float-eq) — exact zero skips an axpy that cannot change the output
            if api == 0.0 {
                continue; // axpy of zero; skip the memory traffic
            }
            let orow = &mut ov_rows[i * n..(i + 1) * n];
            for (o, &b) in orow.iter_mut().zip(brow) {
                *o += api * b;
            }
        }
    }
}

/// `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]` without materializing `Aᵀ`.
///
/// Row-chunk parallel; bit-identical across thread counts.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the shared `k` dimensions
/// disagree.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a)?;
    let (k2, n) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let chunk = row_chunk(m, m * n * k);
    for_each_chunk_mut(out.as_mut_slice(), chunk * n, move |ci, ov_rows| {
        matmul_at_b_rows(av, bv, ov_rows, ci * chunk, k, m, n);
    });
    Ok(out)
}

/// Computes output rows `[row0, row0 + rows)` of `C = A·Bᵀ` into
/// `ov_rows`. `A: [m, k]`, `B: [n, k]`.
fn matmul_a_bt_rows(av: &[f32], bv: &[f32], ov_rows: &mut [f32], row0: usize, k: usize, n: usize) {
    if n == 0 {
        return;
    }
    let rows = ov_rows.len() / n;
    for i in 0..rows {
        let arow = &av[(row0 + i) * k..(row0 + i + 1) * k];
        let orow = &mut ov_rows[i * n..(i + 1) * n];
        let mut j = 0;
        // MR dot products per pass over arow: each a[p] load feeds
        // four B rows. Each dot still accumulates over p in ascending
        // order into a single accumulator, preserving bit-identity
        // with the scalar tail below.
        while j + MR <= n {
            let b0 = &bv[j * k..(j + 1) * k];
            let b1 = &bv[(j + 1) * k..(j + 2) * k];
            let b2 = &bv[(j + 2) * k..(j + 3) * k];
            let b3 = &bv[(j + 3) * k..(j + 4) * k];
            let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
            for p in 0..k {
                let ap = arow[p];
                s0 += ap * b0[p];
                s1 += ap * b1[p];
                s2 += ap * b2[p];
                s3 += ap * b3[p];
            }
            orow[j] += s0;
            orow[j + 1] += s1;
            orow[j + 2] += s2;
            orow[j + 3] += s3;
            j += MR;
        }
        while j < n {
            let brow = &bv[j * k..(j + 1) * k];
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            orow[j] += acc;
            j += 1;
        }
    }
}

/// `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]` without materializing `Bᵀ`.
///
/// Row-chunk parallel; bit-identical across thread counts.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs and
/// [`TensorError::MatmulDimMismatch`] when the shared `k` dimensions
/// disagree.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a)?;
    let (n, k2) = check_rank2(b)?;
    if k != k2 {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: k,
            right_rows: k2,
        });
    }
    let mut out = Tensor::zeros(&[m, n]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let (av, bv) = (a.as_slice(), b.as_slice());
    let chunk = row_chunk(m, m * n * k);
    for_each_chunk_mut(out.as_mut_slice(), chunk * n, move |ci, ov_rows| {
        matmul_a_bt_rows(av, bv, ov_rows, ci * chunk, k, n);
    });
    Ok(out)
}

/// Fills output rows `[jrow0, jrow0 + rows)` of the transpose (each of
/// length `m`) from `A: [m, n]`, tile by tile so both the strided reads
/// and the writes stay within cache lines of a [`TRANSPOSE_TILE`]²
/// block.
fn transpose_rows(av: &[f32], ov_rows: &mut [f32], jrow0: usize, m: usize, n: usize) {
    if m == 0 {
        return;
    }
    let rows = ov_rows.len() / m;
    let mut ib = 0;
    while ib < m {
        let ie = (ib + TRANSPOSE_TILE).min(m);
        let mut jb = 0;
        while jb < rows {
            let je = (jb + TRANSPOSE_TILE).min(rows);
            for i in ib..ie {
                let in_row = &av[i * n..(i + 1) * n];
                for j in jb..je {
                    ov_rows[j * m + i] = in_row[jrow0 + j];
                }
            }
            jb = je;
        }
        ib = ie;
    }
}

/// Transpose of a matrix, tiled for cache locality (the naive loop's
/// column-stride writes thrash on tall matrices) and row-chunk parallel.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-matrix inputs.
pub fn transpose2d(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a)?;
    let mut out = Tensor::zeros(&[n, m]);
    if m == 0 || n == 0 {
        return Ok(out);
    }
    let av = a.as_slice();
    let chunk = row_chunk(n, m * n);
    for_each_chunk_mut(out.as_mut_slice(), chunk * m, move |ci, ov_rows| {
        transpose_rows(av, ov_rows, ci * chunk, m, n);
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], dims: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), dims).unwrap()
    }

    #[test]
    fn matmul_2x3_3x2() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.as_slice(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let c = matmul(&a, &Tensor::eye(2)).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn matmul_rejects_bad_inner_dim() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matches!(
            matmul(&a, &b),
            Err(TensorError::MatmulDimMismatch {
                left_cols: 3,
                right_rows: 4
            })
        ));
    }

    #[test]
    fn matmul_rejects_non_matrix() {
        let a = Tensor::zeros(&[2, 3, 4]);
        assert!(matches!(
            matmul(&a, &Tensor::eye(2)),
            Err(TensorError::RankMismatch { .. })
        ));
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]);
        let b = t(&[1.0, 0.0, 2.0, 1.0, 0.0, 3.0], &[3, 2]);
        let via_t = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        let direct = matmul_at_b(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0, 9.0, 10.0], &[3, 2]);
        let via_t = matmul(&a, &transpose2d(&b).unwrap()).unwrap();
        let direct = matmul_a_bt(&a, &b).unwrap();
        assert_eq!(via_t, direct);
    }

    #[test]
    fn transpose_round_trips() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let back = transpose2d(&transpose2d(&a).unwrap()).unwrap();
        assert_eq!(back, a);
    }

    #[test]
    fn zero_sized_matmul() {
        let a = Tensor::zeros(&[0, 3]);
        let b = Tensor::zeros(&[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[0, 2]);
    }

    /// Integer-valued matrices larger than the tile/register blocks:
    /// blocked kernels must agree exactly with a reference triple loop
    /// (all intermediate sums are exactly representable).
    #[test]
    fn blocked_kernels_match_reference_on_odd_shapes() {
        // 7 rows exercises the MR=4 block plus a 3-row tail; 70 columns
        // exercises the a_bt 4-dot block plus a 2-dot tail.
        let (m, k, n) = (7, 9, 70);
        let a = Tensor::from_fn(&[m, k], |i| ((i * 7 + 3) % 13) as f32 - 6.0);
        let b = Tensor::from_fn(&[k, n], |i| ((i * 5 + 1) % 11) as f32 - 5.0);
        let c = matmul(&a, &b).unwrap();
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0f32;
                for p in 0..k {
                    acc += a.at(&[i, p]) * b.at(&[p, j]);
                }
                assert_eq!(c.at(&[i, j]), acc, "matmul mismatch at ({i}, {j})");
            }
        }
        let at = transpose2d(&a).unwrap(); // [k, m] viewed as Aᵀ input
        assert_eq!(matmul_at_b(&at, &b).unwrap(), c);
        let bt = transpose2d(&b).unwrap(); // [n, k]
        assert_eq!(matmul_a_bt(&a, &bt).unwrap(), c);
    }

    /// Tiled transpose on shapes larger than one tile, including
    /// non-multiples of the tile edge.
    #[test]
    fn tiled_transpose_matches_naive() {
        for (m, n) in [(1, 1), (3, 100), (100, 3), (33, 65), (64, 64)] {
            let a = Tensor::from_fn(&[m, n], |i| i as f32);
            let tr = transpose2d(&a).unwrap();
            assert_eq!(tr.shape(), &[n, m]);
            for i in 0..m {
                for j in 0..n {
                    assert_eq!(tr.at(&[j, i]), a.at(&[i, j]), "({i}, {j}) of {m}x{n}");
                }
            }
        }
    }
}
