//! Convolution lowering: `im2col` / `col2im`.
//!
//! A 2-D convolution over an NCHW input is computed as a single matrix
//! product: `im2col` unrolls every receptive field into a column of a
//! `[C·kh·kw, N·OH·OW]` matrix, the weight tensor is viewed as
//! `[O, C·kh·kw]`, and the product gives every output position for every
//! sample in one GEMM. `col2im` is the adjoint (scatter-add), used for the
//! input gradient.

use crate::par::for_each_chunk_mut;
use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution (square stride/padding per side).
///
/// # Example
///
/// ```
/// use ccq_tensor::ops::Conv2dGeometry;
///
/// let g = Conv2dGeometry { kernel_h: 3, kernel_w: 3, stride: 1, padding: 1 };
/// assert_eq!(g.output_hw(32, 32)?, (32, 32));
/// # Ok::<(), ccq_tensor::TensorError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Conv2dGeometry {
    /// Kernel height.
    pub kernel_h: usize,
    /// Kernel width.
    pub kernel_w: usize,
    /// Stride (same in both spatial dimensions).
    pub stride: usize,
    /// Zero padding added on every side.
    pub padding: usize,
}

impl Conv2dGeometry {
    /// Computes the output spatial size for an input of `h × w`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::InvalidGeometry`] when the kernel does not fit
    /// into the padded input or the stride is zero.
    pub fn output_hw(&self, h: usize, w: usize) -> Result<(usize, usize)> {
        let oh = conv_output_size(h, self.kernel_h, self.stride, self.padding)?;
        let ow = conv_output_size(w, self.kernel_w, self.stride, self.padding)?;
        Ok((oh, ow))
    }
}

/// Output extent of a 1-D convolution: `(n + 2p - k) / s + 1`.
///
/// # Errors
///
/// Returns [`TensorError::InvalidGeometry`] when `stride == 0` or the kernel
/// exceeds the padded input.
pub fn conv_output_size(
    input: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
) -> Result<usize> {
    if stride == 0 {
        return Err(TensorError::InvalidGeometry(
            "stride must be nonzero".into(),
        ));
    }
    let padded = input + 2 * padding;
    if kernel == 0 || kernel > padded {
        return Err(TensorError::InvalidGeometry(format!(
            "kernel {kernel} does not fit padded input {padded}"
        )));
    }
    Ok((padded - kernel) / stride + 1)
}

/// Unrolls an NCHW input into the `[C·kh·kw, N·OH·OW]` patch matrix.
///
/// Column `((n·OH + oh)·OW + ow)` holds the receptive field of output
/// position `(oh, ow)` of sample `n`, flattened channel-major. Padding
/// positions contribute zeros.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-4D input or
/// [`TensorError::InvalidGeometry`] for an infeasible geometry.
pub fn im2col(input: &Tensor, geom: Conv2dGeometry) -> Result<Tensor> {
    input.shape_obj().expect_rank(4)?;
    let [n, c, h, w] = [
        input.shape()[0],
        input.shape()[1],
        input.shape()[2],
        input.shape()[3],
    ];
    let (oh, ow) = geom.output_hw(h, w)?;
    let rows = c * geom.kernel_h * geom.kernel_w;
    let cols = n * oh * ow;
    let mut out = Tensor::zeros(&[rows, cols]);
    if rows == 0 || cols == 0 {
        return Ok(out);
    }
    let iv = input.as_slice();
    // Each output row corresponds to one (channel, kernel-element)
    // triple and is written by exactly one worker: the C·kh·kw rows are
    // disjoint, so parallelizing over them is race-free and
    // bit-identical to the sequential fill.
    for_each_chunk_mut(out.as_mut_slice(), cols, move |row, orow| {
        im2col_row(iv, orow, row, geom, (n, c, h, w), (oh, ow));
    });
    Ok(out)
}

/// Fills one `[N·OH·OW]` row of the patch matrix: kernel element
/// `(row % kw, (row / kw) % kh)` of channel `row / (kh·kw)`.
fn im2col_row(
    iv: &[f32],
    orow: &mut [f32],
    row: usize,
    geom: Conv2dGeometry,
    (n, c, h, w): (usize, usize, usize, usize),
    (oh, ow): (usize, usize),
) {
    let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let ci = row / (kh * kw);
    let ki = (row / kw) % kh;
    let kj = row % kw;
    for ni in 0..n {
        let in_base = (ni * c + ci) * h * w;
        for ohi in 0..oh {
            // Input row for this kernel element, may be in padding.
            let iy = (ohi * s + ki) as isize - p as isize;
            let col_base = (ni * oh + ohi) * ow;
            if iy < 0 || iy >= h as isize {
                continue; // zeros already in place
            }
            let in_row = in_base + iy as usize * w;
            for owi in 0..ow {
                let ix = (owi * s + kj) as isize - p as isize;
                if ix < 0 || ix >= w as isize {
                    continue;
                }
                orow[col_base + owi] = iv[in_row + ix as usize];
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-adds a `[C·kh·kw, N·OH·OW]` patch matrix
/// back into an NCHW tensor of shape `[n, c, h, w]`.
///
/// Overlapping receptive fields accumulate, which is exactly the input
/// gradient of a convolution.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` does not have the
/// shape implied by the geometry and output dims, or
/// [`TensorError::InvalidGeometry`] for an infeasible geometry.
pub fn col2im(
    cols: &Tensor,
    n: usize,
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeometry,
) -> Result<Tensor> {
    let (oh, ow) = geom.output_hw(h, w)?;
    let rows = c * geom.kernel_h * geom.kernel_w;
    let ncols = n * oh * ow;
    if cols.shape() != [rows, ncols] {
        return Err(TensorError::ShapeMismatch {
            expected: vec![rows, ncols],
            actual: cols.shape().to_vec(),
        });
    }
    let mut out = Tensor::zeros(&[n, c, h, w]);
    if n == 0 || c == 0 || h * w == 0 {
        return Ok(out);
    }
    let cv = cols.as_slice();
    // The scatter-add only overlaps *within* one (sample, channel)
    // image plane: every accumulated element belongs to exactly one
    // `[h·w]` block, so parallelizing over those blocks is race-free.
    // Within a block, contributions accumulate in the same
    // (ki, kj, ohi, owi) order as the sequential loop — bit-identical.
    for_each_chunk_mut(out.as_mut_slice(), h * w, move |block, plane| {
        let (ni, ci) = (block / c, block % c);
        col2im_plane(cv, plane, ni, ci, geom, (n, h, w), (oh, ow));
    });
    Ok(out)
}

/// Accumulates channel `ci` of sample `ni` (one `[h·w]` plane) from the
/// patch-matrix rows belonging to that channel.
fn col2im_plane(
    cv: &[f32],
    plane: &mut [f32],
    ni: usize,
    ci: usize,
    geom: Conv2dGeometry,
    (n, h, w): (usize, usize, usize),
    (oh, ow): (usize, usize),
) {
    let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let ncols = n * oh * ow;
    for ki in 0..kh {
        for kj in 0..kw {
            let row = (ci * kh + ki) * kw + kj;
            let crow = &cv[row * ncols..(row + 1) * ncols];
            for ohi in 0..oh {
                let iy = (ohi * s + ki) as isize - p as isize;
                if iy < 0 || iy >= h as isize {
                    continue;
                }
                let out_row = iy as usize * w;
                let col_base = (ni * oh + ohi) * ow;
                for owi in 0..ow {
                    let ix = (owi * s + kj) as isize - p as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    plane[out_row + ix as usize] += crow[col_base + owi];
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::matmul;

    const G1: Conv2dGeometry = Conv2dGeometry {
        kernel_h: 2,
        kernel_w: 2,
        stride: 1,
        padding: 0,
    };

    #[test]
    fn output_size_formula() {
        assert_eq!(conv_output_size(32, 3, 1, 1).unwrap(), 32);
        assert_eq!(conv_output_size(32, 3, 2, 1).unwrap(), 16);
        assert_eq!(conv_output_size(5, 2, 1, 0).unwrap(), 4);
        assert!(conv_output_size(2, 5, 1, 0).is_err());
        assert!(conv_output_size(4, 2, 0, 0).is_err());
    }

    #[test]
    fn im2col_simple_2x2() {
        // 1 sample, 1 channel, 3x3 input, 2x2 kernel, no padding.
        let input = Tensor::from_vec((1..=9).map(|v| v as f32).collect(), &[1, 1, 3, 3]).unwrap();
        let cols = im2col(&input, G1).unwrap();
        assert_eq!(cols.shape(), &[4, 4]);
        // Columns are receptive fields at (0,0), (0,1), (1,0), (1,1).
        assert_eq!(
            cols.as_slice(),
            &[
                1.0, 2.0, 4.0, 5.0, // kernel element (0,0)
                2.0, 3.0, 5.0, 6.0, // kernel element (0,1)
                4.0, 5.0, 7.0, 8.0, // kernel element (1,0)
                5.0, 6.0, 8.0, 9.0, // kernel element (1,1)
            ]
        );
    }

    #[test]
    fn padding_contributes_zeros() {
        let input = Tensor::ones(&[1, 1, 2, 2]);
        let g = Conv2dGeometry {
            kernel_h: 3,
            kernel_w: 3,
            stride: 1,
            padding: 1,
        };
        let cols = im2col(&input, g).unwrap();
        assert_eq!(cols.shape(), &[9, 4]);
        // Center kernel element never touches padding.
        let center_row = &cols.as_slice()[4 * 4..5 * 4];
        assert_eq!(center_row, &[1.0, 1.0, 1.0, 1.0]);
        // Top-left kernel element only sees real input at output (1,1).
        let tl_row = &cols.as_slice()[0..4];
        assert_eq!(tl_row, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn conv_via_gemm_matches_direct() {
        // Direct convolution cross-check on a random-ish input.
        let input = Tensor::from_fn(&[2, 2, 4, 4], |i| ((i * 7 + 3) % 11) as f32 - 5.0);
        let weight = Tensor::from_fn(&[3, 2, 2, 2], |i| ((i * 5 + 1) % 7) as f32 - 3.0);
        let g = Conv2dGeometry {
            kernel_h: 2,
            kernel_w: 2,
            stride: 2,
            padding: 1,
        };
        let (oh, ow) = g.output_hw(4, 4).unwrap();
        let cols = im2col(&input, g).unwrap();
        let wmat = weight.reshape(&[3, 2 * 2 * 2]).unwrap();
        let out = matmul(&wmat, &cols).unwrap(); // [O, N*OH*OW]

        // Direct nested-loop convolution.
        for ni in 0..2usize {
            for o in 0..3usize {
                for y in 0..oh {
                    for x in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..2usize {
                            for ki in 0..2usize {
                                for kj in 0..2usize {
                                    let iy = (y * 2 + ki) as isize - 1;
                                    let ix = (x * 2 + kj) as isize - 1;
                                    if iy < 0 || ix < 0 || iy >= 4 || ix >= 4 {
                                        continue;
                                    }
                                    acc += input.at(&[ni, ci, iy as usize, ix as usize])
                                        * weight.at(&[o, ci, ki, kj]);
                                }
                            }
                        }
                        let col = (ni * oh + y) * ow + x;
                        let got = out.at(&[o, col]);
                        assert!(
                            (got - acc).abs() < 1e-4,
                            "mismatch at n={ni} o={o} y={y} x={x}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random x, y — the defining
        // property of the adjoint, which is what backprop requires.
        let x = Tensor::from_fn(&[1, 2, 5, 5], |i| ((i * 13 + 5) % 17) as f32 - 8.0);
        let g = Conv2dGeometry {
            kernel_h: 3,
            kernel_w: 3,
            stride: 2,
            padding: 1,
        };
        let cols = im2col(&x, g).unwrap();
        let y = Tensor::from_fn(cols.shape(), |i| ((i * 3 + 1) % 5) as f32 - 2.0);
        let lhs = cols.dot(&y).unwrap();
        let back = col2im(&y, 1, 2, 5, 5, g).unwrap();
        let rhs = x.dot(&back).unwrap();
        assert!(
            (lhs - rhs).abs() < 1e-2,
            "adjoint identity violated: {lhs} vs {rhs}"
        );
    }

    #[test]
    fn col2im_validates_shape() {
        let bad = Tensor::zeros(&[3, 3]);
        assert!(col2im(&bad, 1, 1, 3, 3, G1).is_err());
    }

    #[test]
    fn im2col_requires_rank4() {
        assert!(im2col(&Tensor::zeros(&[3, 3]), G1).is_err());
    }
}
