//! Integer matrix kernels for packed low-bit inference.
//!
//! The packed execution path replaces the fake-quant f32 GEMM with true
//! integer arithmetic: activation codes (at most 8 unsigned or signed
//! bits, carried as `i16`) multiply weight codes (at most 8 signed bits,
//! carried as `i8`) into an `i32` accumulator; a single f32 rescale at
//! the layer boundary converts the accumulator back to real units.
//!
//! The kernels are intentionally serial and in index order — an integer
//! sum is associative, but keeping one canonical order means the packed
//! path needs no thread-count caveats at all. Callers are responsible
//! for the accumulator range: with `k` inner products of magnitude at
//! most `|a|·|w| ≤ 255·127`, overflow is impossible for `k` up to
//! ~66 000, far beyond any CCQ layer; [`int_accumulator_safe`] makes the
//! check explicit so layer code can assert it rather than assume it.

use crate::ops::Conv2dGeometry;
use crate::{Result, TensorError};

/// Whether `k` products of `a_max · b_max` magnitude fit an `i32`
/// accumulator. `a_max`/`b_max` are the largest absolute code values the
/// two operands can take (e.g. `255` for unsigned 8-bit activations,
/// `127` for signed 8-bit weights).
pub fn int_accumulator_safe(k: usize, a_max: u32, b_max: u32) -> bool {
    let bound = (k as u64) * u64::from(a_max) * u64::from(b_max);
    bound <= i32::MAX as u64
}

/// Integer `A · Bᵀ`: `a` is `[m, k]` row-major activation codes, `b` is
/// `[n, k]` row-major weight codes, output is `[m, n]` row-major `i32`
/// accumulators. This mirrors the f32 `matmul_a_bt` used by the linear
/// layer (`x · Wᵀ`).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a buffer does not match
/// its declared dimensions.
pub fn int_matmul_a_bt(a: &[i16], b: &[i8], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_len(a.len(), m * k)?;
    check_len(b.len(), n * k)?;
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &b[j * k..(j + 1) * k];
            let mut acc = 0i32;
            for p in 0..k {
                acc += i32::from(arow[p]) * i32::from(brow[p]);
            }
            *o = acc;
        }
    }
    Ok(out)
}

/// Integer `A · B`: `a` is `[m, k]` row-major weight codes, `b` is
/// `[k, n]` row-major activation codes, output is `[m, n]` row-major
/// `i32` accumulators. This mirrors the f32 `matmul` used by the conv
/// layer (`W · im2col(x)`).
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a buffer does not match
/// its declared dimensions.
pub fn int_matmul(a: &[i8], b: &[i16], m: usize, k: usize, n: usize) -> Result<Vec<i32>> {
    check_len(a.len(), m * k)?;
    check_len(b.len(), k * n)?;
    let mut out = vec![0i32; m * n];
    for i in 0..m {
        let arow = &a[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0 {
                continue;
            }
            let av = i32::from(av);
            let brow = &b[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * i32::from(bv);
            }
        }
    }
    Ok(out)
}

/// `im2col` over integer activation codes: unrolls an NCHW code tensor
/// of shape `[n, c, h, w]` into a `[c·kh·kw, n·oh·ow]` row-major patch
/// matrix, with the same row/column ordering as the f32 [`im2col`]
/// (padding positions hold code `0`, which every supported activation
/// grid maps to the real value `0.0`).
///
/// [`im2col`]: crate::ops::im2col
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `codes` does not hold
/// `n·c·h·w` entries, or [`TensorError::InvalidGeometry`] when the
/// kernel does not fit the padded input.
pub fn int_im2col(codes: &[i16], dims: [usize; 4], geom: Conv2dGeometry) -> Result<Vec<i16>> {
    let [n, c, h, w] = dims;
    check_len(codes.len(), n * c * h * w)?;
    let (oh, ow) = geom.output_hw(h, w)?;
    let (kh, kw, s, p) = (geom.kernel_h, geom.kernel_w, geom.stride, geom.padding);
    let rows = c * kh * kw;
    let cols = n * oh * ow;
    let mut out = vec![0i16; rows * cols];
    for row in 0..rows {
        let ci = row / (kh * kw);
        let ki = (row / kw) % kh;
        let kj = row % kw;
        let orow = &mut out[row * cols..(row + 1) * cols];
        for ni in 0..n {
            let in_base = (ni * c + ci) * h * w;
            for ohi in 0..oh {
                let iy = (ohi * s + ki) as isize - p as isize;
                let col_base = (ni * oh + ohi) * ow;
                if iy < 0 || iy >= h as isize {
                    continue; // zeros already in place
                }
                let in_row = in_base + iy as usize * w;
                for owi in 0..ow {
                    let ix = (owi * s + kj) as isize - p as isize;
                    if ix < 0 || ix >= w as isize {
                        continue;
                    }
                    orow[col_base + owi] = codes[in_row + ix as usize];
                }
            }
        }
    }
    Ok(out)
}

fn check_len(actual: usize, expected: usize) -> Result<()> {
    if actual != expected {
        return Err(TensorError::LengthMismatch { expected, actual });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::{im2col, matmul, matmul_a_bt};
    use crate::{rng, Init, Tensor};
    use rand::Rng;

    fn codes_to_tensor(codes: &[i16], dims: &[usize]) -> Tensor {
        Tensor::from_vec(codes.iter().map(|&c| f32::from(c)).collect(), dims).unwrap()
    }

    #[test]
    fn accumulator_guard_matches_bound() {
        assert!(int_accumulator_safe(66_000, 255, 127));
        assert!(!int_accumulator_safe(70_000, 255, 127));
        assert!(int_accumulator_safe(usize::MAX, 0, 127));
    }

    #[test]
    fn int_matmul_a_bt_matches_f32_on_small_codes() {
        let mut r = rng(11);
        let (m, k, n) = (3, 7, 5);
        let a: Vec<i16> = (0..m * k).map(|_| r.gen_range(0..256i32) as i16).collect();
        let b: Vec<i8> = (0..n * k)
            .map(|_| r.gen_range(-127..128i32) as i8)
            .collect();
        let got = int_matmul_a_bt(&a, &b, m, k, n).unwrap();
        let af = codes_to_tensor(&a, &[m, k]);
        let bf: Vec<i16> = b.iter().map(|&v| i16::from(v)).collect();
        let bf = codes_to_tensor(&bf, &[n, k]);
        let want = matmul_a_bt(&af, &bf).unwrap();
        let want: Vec<i32> = want.as_slice().iter().map(|&v| v as i32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn int_matmul_matches_f32_on_small_codes() {
        let mut r = rng(12);
        let (m, k, n) = (4, 6, 9);
        let a: Vec<i8> = (0..m * k)
            .map(|_| r.gen_range(-127..128i32) as i8)
            .collect();
        let b: Vec<i16> = (0..k * n).map(|_| r.gen_range(0..256i32) as i16).collect();
        let got = int_matmul(&a, &b, m, k, n).unwrap();
        let af: Vec<i16> = a.iter().map(|&v| i16::from(v)).collect();
        let af = codes_to_tensor(&af, &[m, k]);
        let bf = codes_to_tensor(&b, &[k, n]);
        let want = matmul(&af, &bf).unwrap();
        let want: Vec<i32> = want.as_slice().iter().map(|&v| v as i32).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn int_im2col_matches_f32_layout() {
        let mut r = rng(13);
        for (n, c, h, w, kern, stride, pad) in [
            (2, 3, 5, 5, 3, 1, 1),
            (1, 2, 4, 6, 3, 2, 0),
            (2, 1, 3, 3, 1, 1, 0),
        ] {
            let geom = Conv2dGeometry {
                kernel_h: kern,
                kernel_w: kern,
                stride,
                padding: pad,
            };
            let codes: Vec<i16> = (0..n * c * h * w)
                .map(|_| r.gen_range(-64..192i32) as i16)
                .collect();
            let got = int_im2col(&codes, [n, c, h, w], geom).unwrap();
            let xf = codes_to_tensor(&codes, &[n, c, h, w]);
            let want = im2col(&xf, geom).unwrap();
            let want: Vec<i16> = want.as_slice().iter().map(|&v| v as i16).collect();
            assert_eq!(got, want, "geometry {geom:?}");
        }
    }

    #[test]
    fn length_mismatches_are_typed() {
        assert!(matches!(
            int_matmul_a_bt(&[0; 5], &[0; 6], 2, 3, 2),
            Err(TensorError::LengthMismatch { .. })
        ));
        assert!(matches!(
            int_matmul(&[0; 6], &[0; 5], 2, 3, 2),
            Err(TensorError::LengthMismatch { .. })
        ));
        assert!(matches!(
            int_im2col(
                &[0; 5],
                [1, 1, 2, 3],
                Conv2dGeometry {
                    kernel_h: 1,
                    kernel_w: 1,
                    stride: 1,
                    padding: 0
                }
            ),
            Err(TensorError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn random_init_smoke_uses_gaussian_codes() {
        // Codes derived from a real weight init stay well inside range.
        let t = Init::Normal {
            mean: 0.0,
            std: 0.05,
        }
        .sample(&[4, 8], &mut rng(9));
        let codes: Vec<i8> = t
            .as_slice()
            .iter()
            .map(|v| ((v / 0.2).clamp(-1.0, 1.0) * 127.0).round() as i8)
            .collect();
        let acts = vec![1i16; 8 * 2];
        let out = int_matmul_a_bt(&acts, &codes, 2, 8, 4).unwrap();
        assert_eq!(out.len(), 8);
    }
}
