//! Numeric kernels: matrix products, convolution lowering, reductions.
//!
//! All kernels operate on plain contiguous buffers; none allocate more than
//! their output. These are the hot paths measured by the criterion benches
//! in `ccq-bench`.

mod conv;
mod intmm;
mod matmul;
mod reduce;

pub use conv::{col2im, conv_output_size, im2col, Conv2dGeometry};
pub use intmm::{int_accumulator_safe, int_im2col, int_matmul, int_matmul_a_bt};
pub use matmul::{matmul, matmul_a_bt, matmul_at_b, transpose2d};
pub use reduce::{channel_stats, log_softmax_rows, softmax_rows, sum_axis0, ChannelStats};
