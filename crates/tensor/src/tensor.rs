//! The dense `f32` tensor type.

use crate::{Result, Shape, TensorError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, contiguous, row-major `f32` tensor with dynamic shape.
///
/// This is the single numeric container used across the CCQ workspace:
/// network weights, activations, and gradients are all `Tensor`s. The layout
/// convention is NCHW for activations and `[out_ch, in_ch, kh, kw]` for
/// convolution weights.
///
/// Checked operations return [`Result`]; the `std::ops` arithmetic
/// implementations panic on shape mismatch (documented per-impl) so that
/// numeric code stays readable once shapes are known correct.
///
/// # Example
///
/// ```
/// use ccq_tensor::Tensor;
///
/// let x = Tensor::full(&[2, 2], 3.0);
/// let y = x.map(|v| v * 2.0);
/// assert_eq!(y.as_slice(), &[6.0, 6.0, 6.0, 6.0]);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor of zeros with the given shape.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor of ones with the given shape.
    pub fn ones(dims: &[usize]) -> Self {
        Tensor::full(dims, 1.0)
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::new(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a rank-0 tensor holding a single scalar.
    pub fn scalar(value: f32) -> Self {
        Tensor {
            shape: Shape::scalar(),
            data: vec![value],
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Tensor::zeros(&[n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when `data.len()` does not
    /// equal the shape volume.
    pub fn from_vec(data: Vec<f32>, dims: &[usize]) -> Result<Self> {
        let shape = Shape::new(dims);
        if data.len() != shape.numel() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: data.len(),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor by evaluating `f` at every flat index.
    pub fn from_fn(dims: &[usize], mut f: impl FnMut(usize) -> f32) -> Self {
        let shape = Shape::new(dims);
        let data = (0..shape.numel()).map(&mut f).collect();
        Tensor { shape, data }
    }

    /// The tensor shape as a dimension slice.
    pub fn shape(&self) -> &[usize] {
        self.shape.dims()
    }

    /// The tensor shape object (for stride/offset helpers).
    pub fn shape_obj(&self) -> &Shape {
        &self.shape
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor holds no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the backing buffer in row-major order.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the index is out of bounds or of the
    /// wrong rank.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-dimensional index.
    ///
    /// # Panics
    ///
    /// Panics in debug builds when the index is out of bounds or of the
    /// wrong rank.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// Reshapes in place (no copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the volumes differ.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let shape = Shape::new(dims);
        if shape.numel() != self.data.len() {
            return Err(TensorError::LengthMismatch {
                expected: shape.numel(),
                actual: self.data.len(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` elementwise, producing a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Applies `f` elementwise in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.shape.expect_eq(&other.shape)?;
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Adds `other` into `self` elementwise.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.shape.expect_eq(&other.shape)?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `scale * other` into `self` elementwise (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_scaled(&mut self, other: &Tensor, scale: f32) -> Result<()> {
        self.shape.expect_eq(&other.shape)?;
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
        Ok(())
    }

    /// Multiplies every element by `scale` in place.
    pub fn scale_in_place(&mut self, scale: f32) {
        for v in &mut self.data {
            *v *= scale;
        }
    }

    /// Sets every element to zero, keeping the allocation.
    pub fn fill(&mut self, value: f32) {
        for v in &mut self.data {
            *v = value;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for an empty tensor).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element (positive infinity for an empty tensor).
    pub fn min(&self) -> f32 {
        self.data.iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Maximum absolute value of any element (0 for an empty tensor).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &v| m.max(v.abs()))
    }

    /// Euclidean (L2) norm of the flattened tensor.
    pub fn norm_l2(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Mean of `|x|` over all elements (0 for an empty tensor). Used by
    /// DoReFa/SAWB-style scale estimation.
    pub fn mean_abs(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().map(|v| v.abs()).sum::<f32>() / self.data.len() as f32
        }
    }

    /// Standard deviation (population) of all elements.
    pub fn std(&self) -> f32 {
        if self.data.is_empty() {
            return 0.0;
        }
        let mean = self.mean();
        let var = self
            .data
            .iter()
            .map(|v| (v - mean) * (v - mean))
            .sum::<f32>()
            / self.data.len() as f32;
        var.sqrt()
    }

    /// Dot product with another same-shaped tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn dot(&self, other: &Tensor) -> Result<f32> {
        self.shape.expect_eq(&other.shape)?;
        Ok(self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| a * b)
            .sum())
    }

    /// Index of the maximum element in the flattened tensor (first on ties).
    ///
    /// Returns `None` for an empty tensor.
    pub fn argmax(&self) -> Option<usize> {
        if self.data.is_empty() {
            return None;
        }
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        Some(best)
    }

    /// Whether all elements are finite (no NaN/inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{}", self.shape)?;
        if self.data.len() <= 8 {
            write!(f, " {:?}", self.data)
        } else {
            write!(
                f,
                " [{:.4}, {:.4}, ..., {:.4}]",
                self.data[0],
                self.data[1],
                self.data[self.data.len() - 1]
            )
        }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $op:tt) => {
        /// Elementwise arithmetic on tensor references.
        ///
        /// # Panics
        ///
        /// Panics when the operand shapes differ; use [`Tensor::zip_map`]
        /// for a checked variant.
        impl std::ops::$trait<&Tensor> for &Tensor {
            type Output = Tensor;
            fn $method(self, rhs: &Tensor) -> Tensor {
                self.zip_map(rhs, |a, b| a $op b)
                    // ccq-lint: allow(panic-surface) — documented panicking operator; zip_map is the checked twin
                    .unwrap_or_else(|e| panic!("tensor {}: {e}", stringify!($method)))
            }
        }
    };
}

impl_binop!(Add, add, +);
impl_binop!(Sub, sub, -);
impl_binop!(Mul, mul, *);

/// Scalar multiplication.
impl std::ops::Mul<f32> for &Tensor {
    type Output = Tensor;
    fn mul(self, rhs: f32) -> Tensor {
        self.map(|v| v * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_ones_full() {
        assert_eq!(Tensor::zeros(&[3]).as_slice(), &[0.0; 3]);
        assert_eq!(Tensor::ones(&[2]).as_slice(), &[1.0; 2]);
        assert_eq!(Tensor::full(&[2], 7.5).as_slice(), &[7.5; 2]);
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        assert_eq!(i.at(&[0, 0]), 1.0);
        assert_eq!(i.at(&[1, 2]), 0.0);
        assert_eq!(i.sum(), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let r = t.reshape(&[2, 2]).unwrap();
        assert_eq!(r.at(&[1, 0]), 3.0);
        assert!(t.reshape(&[3]).is_err());
    }

    #[test]
    fn at_and_set_round_trip() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(&[1, 2], 9.0);
        assert_eq!(t.at(&[1, 2]), 9.0);
        assert_eq!(t.as_slice()[5], 9.0);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(vec![-1.0, 2.0, -3.0, 4.0], &[4]).unwrap();
        assert_eq!(t.sum(), 2.0);
        assert_eq!(t.mean(), 0.5);
        assert_eq!(t.max(), 4.0);
        assert_eq!(t.min(), -3.0);
        assert_eq!(t.max_abs(), 4.0);
        assert_eq!(t.mean_abs(), 2.5);
        assert_eq!(t.argmax(), Some(3));
    }

    #[test]
    fn norm_and_dot() {
        let a = Tensor::from_vec(vec![3.0, 4.0], &[2]).unwrap();
        assert!((a.norm_l2() - 5.0).abs() < 1e-6);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        assert_eq!(a.dot(&b).unwrap(), 11.0);
        assert!(a.dot(&Tensor::zeros(&[3])).is_err());
    }

    #[test]
    fn std_of_constant_is_zero() {
        assert_eq!(Tensor::full(&[10], 2.0).std(), 0.0);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Tensor::ones(&[2]);
        let b = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        a.add_scaled(&b, 0.5).unwrap();
        assert_eq!(a.as_slice(), &[1.5, 2.0]);
    }

    #[test]
    fn binops_work_elementwise() {
        let a = Tensor::from_vec(vec![1.0, 2.0], &[2]).unwrap();
        let b = Tensor::from_vec(vec![3.0, 5.0], &[2]).unwrap();
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((&a * &b).as_slice(), &[3.0, 10.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn binop_panics_on_mismatch() {
        let _ = &Tensor::zeros(&[2]) + &Tensor::zeros(&[3]);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::ones(&[2]);
        assert!(t.all_finite());
        t.as_mut_slice()[1] = f32::NAN;
        assert!(!t.all_finite());
    }

    #[test]
    fn argmax_empty_is_none() {
        assert_eq!(Tensor::zeros(&[0]).argmax(), None);
    }

    #[test]
    fn display_truncates_long_tensors() {
        let t = Tensor::zeros(&[100]);
        let s = t.to_string();
        assert!(s.contains("..."));
    }
}
