//! Bit-packed storage for small unsigned integer codes.
//!
//! Quantized layers produce per-element integer codes drawn from a tiny
//! alphabet (at most `2^bits` symbols for a `bits`-wide layer). Storing
//! those codes one per `f32` — the fake-quant representation — wastes the
//! entire memory win the searcher negotiated. [`PackedInts`] is the dense
//! storage: codes of width 1..=4 bits are nibble-packed two per byte
//! (low nibble first), widths 5..=8 take one byte each, and width 0
//! (a pruned layer) stores nothing at all.
//!
//! The container is deliberately dumb: it holds *unsigned storage codes*
//! and knows nothing about scales, signedness, or grids. The quantizer
//! side (`ccq-quant`) owns the mapping between signed grid indices and
//! storage codes; this module only guarantees `unpack(pack(codes)) ==
//! codes` for every legal width, including odd-length nibble tails.

use std::fmt;

/// Error packing or reading a [`PackedInts`] buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PackError {
    /// The requested code width is outside the supported `0..=8` range.
    UnsupportedBits(u32),
    /// An input code does not fit in the requested width.
    CodeOutOfRange {
        /// Index of the offending code.
        index: usize,
        /// The code value supplied.
        code: u8,
        /// The width it was supposed to fit in.
        bits: u32,
    },
    /// The byte buffer length does not match `len` codes at `bits` width.
    LengthMismatch {
        /// Bytes expected for the declared logical length.
        expected: usize,
        /// Bytes actually present.
        actual: usize,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::UnsupportedBits(b) => {
                write!(f, "packed code width {b} unsupported (expected 0..=8)")
            }
            PackError::CodeOutOfRange { index, code, bits } => {
                write!(
                    f,
                    "code {code} at index {index} does not fit in {bits} bits"
                )
            }
            PackError::LengthMismatch { expected, actual } => {
                write!(f, "packed buffer holds {actual} bytes, expected {expected}")
            }
        }
    }
}

impl std::error::Error for PackError {}

/// Densely packed unsigned integer codes of a fixed small width.
///
/// # Example
///
/// ```
/// use ccq_tensor::packed::PackedInts;
///
/// // Five 3-bit codes nibble-pack into three bytes (odd tail).
/// let p = PackedInts::pack(&[1, 7, 0, 5, 3], 3)?;
/// assert_eq!(p.byte_len(), 3);
/// assert_eq!(p.unpack(), vec![1, 7, 0, 5, 3]);
/// # Ok::<(), ccq_tensor::packed::PackError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackedInts {
    bits: u32,
    len: usize,
    bytes: Vec<u8>,
}

/// Bytes required to store `len` codes of `bits` width.
///
/// Width 0 stores nothing, widths 1..=4 pack two codes per byte (odd
/// lengths round up), widths 5..=8 take a full byte per code.
pub fn packed_byte_len(len: usize, bits: u32) -> Result<usize, PackError> {
    match bits {
        0 => Ok(0),
        1..=4 => Ok(len.div_ceil(2)),
        5..=8 => Ok(len),
        _ => Err(PackError::UnsupportedBits(bits)),
    }
}

impl PackedInts {
    /// Packs `codes` at the given width.
    ///
    /// # Errors
    ///
    /// [`PackError::UnsupportedBits`] for widths above 8, and
    /// [`PackError::CodeOutOfRange`] when a code needs more than `bits`
    /// bits (any nonzero code at width 0).
    pub fn pack(codes: &[u8], bits: u32) -> Result<Self, PackError> {
        let byte_len = packed_byte_len(codes.len(), bits)?;
        for (index, &code) in codes.iter().enumerate() {
            if (u32::from(code)) >> bits != 0 {
                return Err(PackError::CodeOutOfRange { index, code, bits });
            }
        }
        let mut bytes = vec![0u8; byte_len];
        if bits == 0 {
            return Ok(Self {
                bits,
                len: codes.len(),
                bytes,
            });
        }
        if bits <= 4 {
            for (i, &code) in codes.iter().enumerate() {
                // Low nibble first: code 2i lives in bits 0..4 of byte i.
                bytes[i / 2] |= code << ((i % 2) * 4);
            }
        } else {
            bytes.copy_from_slice(codes);
        }
        Ok(Self {
            bits,
            len: codes.len(),
            bytes,
        })
    }

    /// Reassembles a container from raw parts (the wire-format reader).
    ///
    /// # Errors
    ///
    /// [`PackError::UnsupportedBits`] for an illegal width,
    /// [`PackError::LengthMismatch`] when `bytes` is not exactly the size
    /// implied by `len` and `bits`, and [`PackError::CodeOutOfRange`]
    /// when a stored code (including a padding nibble in the odd tail)
    /// exceeds the width.
    pub fn from_parts(bytes: Vec<u8>, len: usize, bits: u32) -> Result<Self, PackError> {
        let expected = packed_byte_len(len, bits)?;
        if bytes.len() != expected {
            return Err(PackError::LengthMismatch {
                expected,
                actual: bytes.len(),
            });
        }
        let out = Self { bits, len, bytes };
        for (index, code) in out.iter().enumerate() {
            if (u32::from(code)) >> bits != 0 {
                return Err(PackError::CodeOutOfRange { index, code, bits });
            }
        }
        // An odd nibble tail must have a zero padding nibble so that the
        // byte image of a logical code sequence is unique.
        if (1..=4).contains(&bits) && len % 2 == 1 {
            let tail = out.bytes[len / 2];
            if tail >> 4 != 0 {
                return Err(PackError::CodeOutOfRange {
                    index: len,
                    code: tail >> 4,
                    bits,
                });
            }
        }
        Ok(out)
    }

    /// Code width in bits (0..=8).
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Number of logical codes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the container holds no codes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Size of the dense byte buffer.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }

    /// The raw packed bytes (wire-format writer side).
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The code at `index`, or `None` past the end.
    pub fn get(&self, index: usize) -> Option<u8> {
        if index >= self.len {
            return None;
        }
        Some(match self.bits {
            0 => 0,
            1..=4 => (self.bytes[index / 2] >> ((index % 2) * 4)) & 0x0f,
            _ => self.bytes[index],
        })
    }

    /// Iterates the logical codes in order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        (0..self.len).map(move |i| match self.bits {
            0 => 0,
            1..=4 => (self.bytes[i / 2] >> ((i % 2) * 4)) & 0x0f,
            _ => self.bytes[i],
        })
    }

    /// Expands back to one code per element.
    pub fn unpack(&self) -> Vec<u8> {
        self.iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_width_stores_nothing() {
        let p = PackedInts::pack(&[0, 0, 0], 0).unwrap();
        assert_eq!(p.byte_len(), 0);
        assert_eq!(p.unpack(), vec![0, 0, 0]);
        assert_eq!(
            PackedInts::pack(&[1], 0),
            Err(PackError::CodeOutOfRange {
                index: 0,
                code: 1,
                bits: 0
            })
        );
    }

    #[test]
    fn nibble_packing_is_low_nibble_first() {
        let p = PackedInts::pack(&[0x3, 0xa, 0x5], 4).unwrap();
        assert_eq!(p.bytes(), &[0xa3, 0x05]);
        assert_eq!(p.get(1), Some(0xa));
        assert_eq!(p.get(3), None);
    }

    #[test]
    fn byte_widths_are_one_per_byte() {
        let p = PackedInts::pack(&[255, 0, 17], 8).unwrap();
        assert_eq!(p.bytes(), &[255, 0, 17]);
        let e = PackedInts::pack(&[64], 6);
        assert_eq!(
            e,
            Err(PackError::CodeOutOfRange {
                index: 0,
                code: 64,
                bits: 6
            })
        );
    }

    #[test]
    fn from_parts_validates_lengths_and_tails() {
        let p = PackedInts::pack(&[1, 2, 3], 4).unwrap();
        let again = PackedInts::from_parts(p.bytes().to_vec(), 3, 4).unwrap();
        assert_eq!(again, p);
        assert!(matches!(
            PackedInts::from_parts(vec![0; 3], 3, 4),
            Err(PackError::LengthMismatch { .. })
        ));
        // Nonzero padding nibble in an odd tail is rejected.
        assert!(matches!(
            PackedInts::from_parts(vec![0x01, 0xf3], 3, 4),
            Err(PackError::CodeOutOfRange { .. })
        ));
        // A 2-bit code smuggled into the stored bytes is rejected.
        assert!(matches!(
            PackedInts::from_parts(vec![0x07], 2, 2),
            Err(PackError::CodeOutOfRange { .. })
        ));
    }

    #[test]
    fn unsupported_widths_are_rejected() {
        assert_eq!(PackedInts::pack(&[], 9), Err(PackError::UnsupportedBits(9)));
        assert_eq!(packed_byte_len(10, 32), Err(PackError::UnsupportedBits(32)));
    }

    #[test]
    fn byte_len_matches_formula() {
        for (len, bits, want) in [
            (0usize, 4u32, 0usize),
            (1, 1, 1),
            (2, 4, 1),
            (3, 4, 2),
            (7, 3, 4),
            (7, 5, 7),
            (4, 8, 4),
            (5, 0, 0),
        ] {
            assert_eq!(packed_byte_len(len, bits).unwrap(), want, "{len}@{bits}");
        }
    }
}
