//! Dense `f32` tensors and the numeric kernels backing the CCQ training stack.
//!
//! This crate is the lowest layer of the CCQ reproduction: a small,
//! dependency-light tensor library sufficient to train convolutional
//! networks on a CPU. Tensors are row-major, contiguous, `f32`-valued and
//! carry a dynamic [`Shape`]. Convolution is implemented via
//! [`ops::im2col`]/[`ops::col2im`] plus [`ops::matmul`].
//!
//! # Example
//!
//! ```
//! use ccq_tensor::Tensor;
//!
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::eye(2);
//! let c = ccq_tensor::ops::matmul(&a, &b)?;
//! assert_eq!(c.as_slice(), a.as_slice());
//! # Ok::<(), ccq_tensor::TensorError>(())
//! ```

mod error;
mod init;
pub mod ops;
pub mod packed;
pub mod par;
mod shape;
mod tensor;

pub use error::TensorError;
pub use init::{rng, rng_from_state, rng_state, Init, Rng64};
pub use packed::{packed_byte_len, PackError, PackedInts};
pub use shape::Shape;
pub use tensor::Tensor;

/// Crate-wide result alias. See [`TensorError`] for the error cases.
pub type Result<T> = std::result::Result<T, TensorError>;
