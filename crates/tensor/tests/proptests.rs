//! Property-based tests for tensor kernels.

use ccq_tensor::ops::{
    col2im, im2col, matmul, matmul_a_bt, matmul_at_b, softmax_rows, transpose2d, Conv2dGeometry,
};
use ccq_tensor::Tensor;
use proptest::prelude::*;

fn small_dim() -> impl Strategy<Value = usize> {
    1usize..6
}

fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, &[rows, cols]).expect("len matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Matmul distributes over addition: A(B + C) = AB + AC.
    #[test]
    fn matmul_distributes((m, k, n) in (small_dim(), small_dim(), small_dim()),
                          seed in 0u64..1000) {
        let mut r = ccq_tensor::rng(seed);
        let a = ccq_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.sample(&[m, k], &mut r);
        let b = ccq_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.sample(&[k, n], &mut r);
        let c = ccq_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.sample(&[k, n], &mut r);
        let lhs = matmul(&a, &(&b + &c)).unwrap();
        let rhs = &matmul(&a, &b).unwrap() + &matmul(&a, &c).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// (AB)ᵀ = BᵀAᵀ.
    #[test]
    fn matmul_transpose_identity((m, k, n) in (small_dim(), small_dim(), small_dim()),
                                 seed in 0u64..1000) {
        let mut r = ccq_tensor::rng(seed);
        let a = ccq_tensor::Init::Uniform { lo: -2.0, hi: 2.0 }.sample(&[m, k], &mut r);
        let b = ccq_tensor::Init::Uniform { lo: -2.0, hi: 2.0 }.sample(&[k, n], &mut r);
        let lhs = transpose2d(&matmul(&a, &b).unwrap()).unwrap();
        let rhs = matmul(&transpose2d(&b).unwrap(), &transpose2d(&a).unwrap()).unwrap();
        for (x, y) in lhs.as_slice().iter().zip(rhs.as_slice()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    /// The fused transpose products agree with explicit transposition.
    #[test]
    fn fused_transpose_products(a in matrix(4, 3), b in matrix(4, 5)) {
        let direct = matmul_at_b(&a, &b).unwrap();
        let explicit = matmul(&transpose2d(&a).unwrap(), &b).unwrap();
        prop_assert_eq!(direct, explicit);

        let c = transpose2d(&b).unwrap(); // [5, 4]
        let direct2 = matmul_a_bt(&c, &a.reshape(&[3, 4]).unwrap()).unwrap();
        let explicit2 = matmul(&c, &transpose2d(&a.reshape(&[3, 4]).unwrap()).unwrap()).unwrap();
        prop_assert_eq!(direct2, explicit2);
    }

    /// <im2col(x), y> == <x, col2im(y)>: adjointness for arbitrary geometry.
    #[test]
    fn im2col_col2im_adjoint(
        (n, c) in (1usize..3, 1usize..3),
        hw in 3usize..7,
        k in 1usize..4,
        stride in 1usize..3,
        padding in 0usize..2,
        seed in 0u64..1000,
    ) {
        let geom = Conv2dGeometry { kernel_h: k, kernel_w: k, stride, padding };
        prop_assume!(geom.output_hw(hw, hw).is_ok());
        let mut r = ccq_tensor::rng(seed);
        let x = ccq_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.sample(&[n, c, hw, hw], &mut r);
        let cols = im2col(&x, geom).unwrap();
        let y = ccq_tensor::Init::Uniform { lo: -1.0, hi: 1.0 }.sample(cols.shape(), &mut r);
        let lhs = cols.dot(&y).unwrap();
        let rhs = x.dot(&col2im(&y, n, c, hw, hw, geom).unwrap()).unwrap();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + lhs.abs()));
    }

    /// Softmax rows are probability vectors, invariant to shifting logits.
    #[test]
    fn softmax_shift_invariance(x in matrix(3, 5), shift in -50.0f32..50.0) {
        let s1 = softmax_rows(&x).unwrap();
        let s2 = softmax_rows(&x.map(|v| v + shift)).unwrap();
        for (a, b) in s1.as_slice().iter().zip(s2.as_slice()) {
            prop_assert!((a - b).abs() < 1e-4);
        }
        for r in 0..3 {
            let sum: f32 = s1.as_slice()[r * 5..(r + 1) * 5].iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
        }
    }

    /// Reshape round-trips preserve the data exactly.
    #[test]
    fn reshape_round_trip(v in proptest::collection::vec(-1e6f32..1e6, 1..64)) {
        let n = v.len();
        let t = Tensor::from_vec(v.clone(), &[n]).unwrap();
        let r = t.reshape(&[1, n]).unwrap().reshape(&[n]).unwrap();
        prop_assert_eq!(r.as_slice(), &v[..]);
    }
}
