//! Property tests: packed integer storage is lossless for every width.

use ccq_tensor::{packed_byte_len, PackError, PackedInts};
use proptest::prelude::*;

/// Masks raw random bytes down to codes that fit `bits` bits.
fn mask(raw: Vec<u8>, bits: u32) -> Vec<u8> {
    let m = if bits == 0 {
        0u8
    } else {
        (((1u16 << bits) - 1) & 0xFF) as u8
    };
    raw.into_iter().map(|c| c & m).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// pack → unpack is the identity for every supported width,
    /// including the 0-bit pruning rung and odd-length nibble tails.
    /// 0..=257 elements covers empty inputs, odd int4 nibble tails, and
    /// multi-byte payloads.
    #[test]
    fn pack_unpack_is_lossless(bits in 0u32..=8,
                               raw in proptest::collection::vec(0u8..=255, 0..258)) {
        let cs = mask(raw, bits);
        let packed = PackedInts::pack(&cs, bits).unwrap();
        prop_assert_eq!(packed.len(), cs.len());
        prop_assert_eq!(packed.byte_len(), packed_byte_len(cs.len(), bits).unwrap());
        prop_assert_eq!(packed.unpack(), cs.clone());
        for (i, &c) in cs.iter().enumerate() {
            prop_assert_eq!(packed.get(i), Some(c));
        }
        prop_assert_eq!(packed.get(cs.len()), None);
    }

    /// Wire round trip: payload bytes → `from_parts` reconstructs the
    /// identical packed container.
    #[test]
    fn wire_parts_round_trip(bits in 0u32..=8,
                             raw in proptest::collection::vec(0u8..=255, 0..258)) {
        let cs = mask(raw, bits);
        let packed = PackedInts::pack(&cs, bits).unwrap();
        let wire = packed.bytes().to_vec();
        let back = PackedInts::from_parts(wire, cs.len(), bits).unwrap();
        prop_assert_eq!(&back, &packed);
        prop_assert_eq!(back.unpack(), cs);
    }

    /// A declared length that does not match the payload is rejected.
    #[test]
    fn wrong_wire_length_is_rejected(bits in 1u32..=8,
                                     raw in proptest::collection::vec(0u8..=255, 2..64)) {
        let cs = mask(raw, bits);
        let packed = PackedInts::pack(&cs, bits).unwrap();
        let mut wire = packed.bytes().to_vec();
        wire.push(0); // one trailing byte too many
        let is_len_mismatch = matches!(
            PackedInts::from_parts(wire, cs.len(), bits),
            Err(PackError::LengthMismatch { .. })
        );
        prop_assert!(is_len_mismatch);
    }

    /// A code too wide for the declared width is rejected, not
    /// truncated.
    #[test]
    fn out_of_range_codes_are_rejected(bits in 0u32..8, len in 1usize..40, pos_seed in 0usize..40) {
        let pos = pos_seed % len;
        let mut cs = vec![0u8; len];
        cs[pos] = 1u8 << bits; // first value that no longer fits
        match PackedInts::pack(&cs, bits) {
            Err(PackError::CodeOutOfRange { index, .. }) => prop_assert_eq!(index, pos),
            other => prop_assert!(false, "expected CodeOutOfRange, got {:?}", other),
        }
    }

    /// Unsupported widths (wider than a byte) are a typed error.
    #[test]
    fn unsupported_widths_error(bits in 9u32..64) {
        prop_assert!(matches!(
            PackedInts::pack(&[0], bits),
            Err(PackError::UnsupportedBits(_))
        ));
        prop_assert!(packed_byte_len(4, bits).is_err());
    }
}

#[test]
fn odd_int4_tail_pads_with_a_zero_nibble() {
    let packed = PackedInts::pack(&[0xF, 0x1, 0x7], 4).unwrap();
    assert_eq!(packed.bytes(), &[0x1F, 0x07]);
    // A nonzero padding nibble on the wire is corruption.
    assert!(PackedInts::from_parts(vec![0x1F, 0x77], 3, 4).is_err());
    assert!(PackedInts::from_parts(vec![0x1F, 0x07], 3, 4).is_ok());
}
