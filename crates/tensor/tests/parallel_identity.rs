//! Serial/parallel bit-identity: every kernel must produce byte-for-byte
//! identical output at any thread count. The parallel paths only partition
//! disjoint output regions and never reorder per-element accumulation, so
//! equality here is exact (`assert_eq!` on the raw `f32` slices), not
//! approximate.
//!
//! Under `--no-default-features` these tests still run and pass trivially
//! (every path is the serial one), keeping the suite uniform.

use ccq_tensor::ops::{
    col2im, im2col, matmul, matmul_a_bt, matmul_at_b, transpose2d, Conv2dGeometry,
};
use ccq_tensor::{rng, Init, Tensor};
use proptest::prelude::*;

/// Thread counts to compare; 1 pins the sequential code path.
const THREADS: [usize; 4] = [1, 2, 4, 8];

/// Runs `f` under a pool forced to `n` threads.
fn with_threads<T>(n: usize, f: impl FnOnce() -> T) -> T {
    rayon::ThreadPoolBuilder::new()
        .num_threads(n)
        .build()
        .expect("pool")
        .install(f)
}

/// Asserts `op` yields bit-identical tensors at every thread count.
fn assert_thread_invariant(op: impl Fn() -> Tensor) {
    let baseline = with_threads(1, &op);
    for &t in &THREADS[1..] {
        let out = with_threads(t, &op);
        assert_eq!(
            baseline.as_slice(),
            out.as_slice(),
            "output differs at {t} threads"
        );
        assert_eq!(baseline.shape(), out.shape());
    }
}

fn sample(shape: &[usize], seed: u64) -> Tensor {
    let mut r = rng(seed);
    Init::Uniform { lo: -2.0, hi: 2.0 }.sample(shape, &mut r)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `matmul` is bit-identical across thread counts, including shapes
    /// past the parallel work threshold.
    #[test]
    fn matmul_is_thread_invariant((m, k, n) in (1usize..48, 1usize..48, 1usize..48),
                                  seed in 0u64..1000) {
        let a = sample(&[m, k], seed);
        let b = sample(&[k, n], seed.wrapping_add(1));
        assert_thread_invariant(|| matmul(&a, &b).unwrap());
    }

    /// `matmul_at_b` (AᵀB) is bit-identical across thread counts.
    #[test]
    fn matmul_at_b_is_thread_invariant((m, k, n) in (1usize..48, 1usize..48, 1usize..48),
                                       seed in 0u64..1000) {
        let a = sample(&[k, m], seed);
        let b = sample(&[k, n], seed.wrapping_add(1));
        assert_thread_invariant(|| matmul_at_b(&a, &b).unwrap());
    }

    /// `matmul_a_bt` (ABᵀ) is bit-identical across thread counts.
    #[test]
    fn matmul_a_bt_is_thread_invariant((m, k, n) in (1usize..48, 1usize..48, 1usize..48),
                                       seed in 0u64..1000) {
        let a = sample(&[m, k], seed);
        let b = sample(&[n, k], seed.wrapping_add(1));
        assert_thread_invariant(|| matmul_a_bt(&a, &b).unwrap());
    }

    /// `transpose2d` is bit-identical across thread counts.
    #[test]
    fn transpose2d_is_thread_invariant((m, n) in (1usize..70, 1usize..70),
                                       seed in 0u64..1000) {
        let a = sample(&[m, n], seed);
        assert_thread_invariant(|| transpose2d(&a).unwrap());
    }

    /// `im2col` is bit-identical across thread counts.
    #[test]
    fn im2col_is_thread_invariant((n, c, h, w) in (1usize..3, 1usize..5, 3usize..10, 3usize..10),
                                  (kernel, stride, padding) in (1usize..4, 1usize..3, 0usize..2),
                                  seed in 0u64..1000) {
        let geom = Conv2dGeometry { kernel_h: kernel, kernel_w: kernel, stride, padding };
        let input = sample(&[n, c, h, w], seed);
        assert_thread_invariant(|| im2col(&input, geom).unwrap());
    }

    /// `col2im` (the scatter-add adjoint) is bit-identical across thread
    /// counts — the strongest case, since its output elements accumulate
    /// multiple column entries.
    #[test]
    fn col2im_is_thread_invariant((n, c, h, w) in (1usize..3, 1usize..5, 3usize..10, 3usize..10),
                                  (kernel, stride, padding) in (1usize..4, 1usize..3, 0usize..2),
                                  seed in 0u64..1000) {
        let geom = Conv2dGeometry { kernel_h: kernel, kernel_w: kernel, stride, padding };
        let (oh, ow) = geom.output_hw(h, w).unwrap();
        let cols = sample(&[c * kernel * kernel, n * oh * ow], seed);
        assert_thread_invariant(|| col2im(&cols, n, c, h, w, geom).unwrap());
    }
}

/// A fixed large case well past the parallel threshold, so the chunked
/// microkernel path is exercised even if the property shapes land small.
#[test]
fn large_matmul_family_is_thread_invariant() {
    let a = sample(&[96, 64], 7);
    let b = sample(&[64, 80], 8);
    assert_thread_invariant(|| matmul(&a, &b).unwrap());
    let at = sample(&[64, 96], 9);
    assert_thread_invariant(|| matmul_at_b(&at, &b).unwrap());
    let bt = sample(&[80, 64], 10);
    assert_thread_invariant(|| matmul_a_bt(&a, &bt).unwrap());
}

/// Environment-driven thread counts behave like explicit pools: whatever
/// `RAYON_NUM_THREADS` resolves to, results match the 1-thread baseline.
#[test]
fn ambient_pool_matches_single_thread() {
    let a = sample(&[40, 33], 11);
    let b = sample(&[33, 57], 12);
    let baseline = with_threads(1, || matmul(&a, &b).unwrap());
    let ambient = matmul(&a, &b).unwrap();
    assert_eq!(baseline.as_slice(), ambient.as_slice());
}
