//! JSON diagnostics must be byte-stable: `run_suite.sh` archives
//! `results/lint.json` next to the golden traces, so two runs over the
//! same tree must produce identical bytes, and the schema is pinned
//! here down to whitespace.

use ccq_lint::{render_json, Finding, Related};

fn sample() -> Vec<Finding> {
    vec![
        Finding {
            path: "crates/core/src/event.rs".into(),
            line: 41,
            col: 18,
            rule: "wire-drift",
            message:
                "JSON event key \"learning_rate\" is emitted here but never parsed by decode_event"
                    .into(),
            related: Some(Related {
                path: "crates/core/src/replay.rs".into(),
                line: 107,
                col: 22,
            }),
        },
        Finding {
            path: "crates/serve/src/spool.rs".into(),
            line: 9,
            col: 5,
            rule: "durability",
            message: "rename without a preceding sync_all in the same function".into(),
            related: None,
        },
    ]
}

#[test]
fn empty_document_bytes_are_pinned() {
    assert_eq!(
        render_json(&[]),
        "{\n  \"version\": 1,\n  \"count\": 0,\n  \"findings\": []\n}\n"
    );
}

#[test]
fn populated_document_bytes_are_pinned() {
    let expected = concat!(
        "{\n",
        "  \"version\": 1,\n",
        "  \"count\": 2,\n",
        "  \"findings\": [\n",
        "    {\"file\": \"crates/core/src/event.rs\", \"line\": 41, \"col\": 18, ",
        "\"rule\": \"wire-drift\", \"message\": \"JSON event key \\\"learning_rate\\\" ",
        "is emitted here but never parsed by decode_event\", ",
        "\"related\": {\"file\": \"crates/core/src/replay.rs\", \"line\": 107, \"col\": 22}},\n",
        "    {\"file\": \"crates/serve/src/spool.rs\", \"line\": 9, \"col\": 5, ",
        "\"rule\": \"durability\", \"message\": ",
        "\"rename without a preceding sync_all in the same function\"}\n",
        "  ]\n",
        "}\n",
    );
    assert_eq!(render_json(&sample()), expected);
}

#[test]
fn rendering_is_deterministic() {
    let findings = sample();
    assert_eq!(render_json(&findings), render_json(&findings));
}

#[test]
fn control_characters_and_quotes_are_escaped() {
    let f = [Finding {
        path: "a\"b\\c.rs".into(),
        line: 1,
        col: 1,
        rule: "determinism",
        message: "tab\there\nnewline\u{1}ctl".into(),
        related: None,
    }];
    let out = render_json(&f);
    assert!(out.contains("\"a\\\"b\\\\c.rs\""), "{out}");
    assert!(out.contains("tab\\there\\nnewline\\u0001ctl"), "{out}");
    // Still a single line per finding: the raw control bytes are gone.
    assert!(!out.contains('\u{1}'), "{out}");
}
