//! Cross-file wire-drift tests: each format pair lints clean when the
//! halves agree, fires a two-location diagnostic when they drift, is
//! waivable at the orphaned site, and flags the waiver itself once it
//! stops suppressing anything.

use ccq_lint::{check_wire, Finding, WireRole, WireSource};
use std::fs;
use std::path::Path;

fn load(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/wire")
        .join(name);
    fs::read_to_string(&path).unwrap()
}

/// Fixture sources masquerade as the real wire files: wire-drift
/// waivers are only valid at those paths, exactly as in production.
const EVENT_RS: &str = "crates/core/src/event.rs";
const REPLAY_RS: &str = "crates/core/src/replay.rs";
const SPEC_RS: &str = "crates/serve/src/spec.rs";
const METRICS_RS: &str = "crates/core/src/metrics.rs";
const GOLDEN_TXT: &str = "crates/core/tests/golden/metrics.txt";
const RUN_STATE_RS: &str = "crates/core/src/run_state.rs";
const PACK_FORMAT_RS: &str = "crates/infer/src/format.rs";

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn symmetric_event_pair_is_clean() {
    let emit = load("event_emit_clean.rs");
    let parse = load("event_parse_clean.rs");
    let f = check_wire(&[
        WireSource {
            role: WireRole::EventEmit,
            path: EVENT_RS,
            src: &emit,
        },
        WireSource {
            role: WireRole::EventParse,
            path: REPLAY_RS,
            src: &parse,
        },
    ]);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn drifted_emitter_fires_on_both_sides_with_both_locations() {
    let emit = load("event_emit_fire.rs");
    let parse = load("event_parse_clean.rs");
    let f = check_wire(&[
        WireSource {
            role: WireRole::EventEmit,
            path: EVENT_RS,
            src: &emit,
        },
        WireSource {
            role: WireRole::EventParse,
            path: REPLAY_RS,
            src: &parse,
        },
    ]);
    // `learning_rate` and `path` emitted but unparsed, the `autosave`
    // kind has no decode arm, and the decoder still reads `lr`.
    assert_eq!(rules(&f), ["wire-drift"; 4], "{f:#?}");

    let renamed = f
        .iter()
        .find(|x| x.message.contains("\"learning_rate\""))
        .expect("renamed key should fire on the emit side");
    assert_eq!(renamed.path, EVENT_RS, "{renamed:#?}");
    assert!(renamed.message.contains("never parsed"), "{renamed:#?}");
    let rel = renamed.related.as_ref().expect("counterpart location");
    assert_eq!(rel.path, REPLAY_RS, "{renamed:#?}");
    // Display renders both locations for editor navigation.
    assert!(
        renamed
            .to_string()
            .contains("(counterpart: crates/core/src/replay.rs:"),
        "{renamed}"
    );

    let orphan_read = f
        .iter()
        .find(|x| x.message.contains("\"lr\""))
        .expect("the stranded read should fire on the parse side");
    assert_eq!(orphan_read.path, REPLAY_RS, "{orphan_read:#?}");
    assert!(
        orphan_read.message.contains("never emitted"),
        "{orphan_read:#?}"
    );
    assert_eq!(
        orphan_read.related.as_ref().map(|r| r.path.as_str()),
        Some(EVENT_RS),
        "{orphan_read:#?}"
    );

    let kind = f
        .iter()
        .find(|x| x.message.contains("\"autosave\""))
        .expect("the unparsed kind should fire");
    assert!(kind.message.contains("no matching arm"), "{kind:#?}");
}

#[test]
fn waived_forward_compat_key_is_clean() {
    let emit = load("event_emit_waived.rs");
    let parse = load("event_parse_clean.rs");
    let f = check_wire(&[
        WireSource {
            role: WireRole::EventEmit,
            path: EVENT_RS,
            src: &emit,
        },
        WireSource {
            role: WireRole::EventParse,
            path: REPLAY_RS,
            src: &parse,
        },
    ]);
    // The `schema` key is emitted but never parsed; the standalone
    // wire-drift waiver records the intent, and because it suppresses a
    // live finding it is not stale either.
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn stale_wire_drift_waiver_is_flagged() {
    let emit = load("event_emit_stale.rs");
    let parse = load("event_parse_clean.rs");
    let f = check_wire(&[
        WireSource {
            role: WireRole::EventEmit,
            path: EVENT_RS,
            src: &emit,
        },
        WireSource {
            role: WireRole::EventParse,
            path: REPLAY_RS,
            src: &parse,
        },
    ]);
    assert_eq!(rules(&f), ["stale-waiver"], "{f:#?}");
    assert_eq!(f[0].path, EVENT_RS, "{f:#?}");
    assert!(f[0].message.contains("wire-drift"), "{f:#?}");
}

#[test]
fn missing_counterpart_skips_the_format() {
    // With only the emit half present there is nothing to drift
    // against, so a drifted emitter stays quiet rather than spraying
    // false orphans. This is what lets the seeded-drift smoke test run
    // on a two-file scratch tree.
    let emit = load("event_emit_fire.rs");
    let f = check_wire(&[WireSource {
        role: WireRole::EventEmit,
        path: EVENT_RS,
        src: &emit,
    }]);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn symmetric_spec_round_trip_is_clean() {
    let spec = load("spec_clean.rs");
    let f = check_wire(&[WireSource {
        role: WireRole::Spec,
        path: SPEC_RS,
        src: &spec,
    }]);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn drifted_spec_key_fires_on_both_halves() {
    let spec = load("spec_fire.rs");
    let f = check_wire(&[WireSource {
        role: WireRole::Spec,
        path: SPEC_RS,
        src: &spec,
    }]);
    // `seed` rendered but never read back; `rng_seed` read but never
    // rendered — one finding per orphaned half.
    assert_eq!(rules(&f), ["wire-drift"; 2], "{f:#?}");
    assert!(
        f.iter()
            .any(|x| x.message.contains("\"seed\"") && x.message.contains("never read back")),
        "{f:#?}"
    );
    assert!(
        f.iter()
            .any(|x| x.message.contains("\"rng_seed\"") && x.message.contains("never writes")),
        "{f:#?}"
    );
    assert!(f.iter().all(|x| x.related.is_some()), "{f:#?}");
}

#[test]
fn golden_families_backed_by_registrations_are_clean() {
    let metrics = load("metrics_clean.rs");
    let golden = load("golden_clean.txt");
    let f = check_wire(&[
        WireSource {
            role: WireRole::Metrics,
            path: METRICS_RS,
            src: &metrics,
        },
        WireSource {
            role: WireRole::GoldenMetrics,
            path: GOLDEN_TXT,
            src: &golden,
        },
    ]);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn unregistered_golden_family_fires_at_the_type_line() {
    let metrics = load("metrics_clean.rs");
    let golden = load("golden_fire.txt");
    let f = check_wire(&[
        WireSource {
            role: WireRole::Metrics,
            path: METRICS_RS,
            src: &metrics,
        },
        WireSource {
            role: WireRole::GoldenMetrics,
            path: GOLDEN_TXT,
            src: &golden,
        },
    ]);
    assert_eq!(rules(&f), ["wire-drift"], "{f:#?}");
    assert_eq!(f[0].path, GOLDEN_TXT, "{f:#?}");
    assert_eq!(f[0].line, 3, "{f:#?}");
    assert!(f[0].message.contains("\"ccq_steps_total\""), "{f:#?}");
    assert_eq!(
        f[0].related.as_ref().map(|r| r.path.as_str()),
        Some(METRICS_RS),
        "{f:#?}"
    );
}

#[test]
fn run_state_tags_used_on_both_sides_are_clean() {
    let rs = load("run_state_clean.rs");
    let f = check_wire(&[WireSource {
        role: WireRole::RunState,
        path: RUN_STATE_RS,
        src: &rs,
    }]);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn tag_pushed_but_never_matched_fires_at_its_definition() {
    let rs = load("run_state_fire.rs");
    let f = check_wire(&[WireSource {
        role: WireRole::RunState,
        path: RUN_STATE_RS,
        src: &rs,
    }]);
    assert_eq!(rules(&f), ["wire-drift"], "{f:#?}");
    assert!(f[0].message.contains("CCQRUNS"), "{f:#?}");
    assert!(f[0].message.contains("TAG_ZERO"), "{f:#?}");
    assert!(f[0].message.contains("used on 1 side(s)"), "{f:#?}");
    assert!(f[0].related.is_some(), "{f:#?}");
}

#[test]
fn pack_format_tags_used_on_both_sides_are_clean() {
    let rs = load("pack_format_clean.rs");
    let f = check_wire(&[WireSource {
        role: WireRole::PackFormat,
        path: PACK_FORMAT_RS,
        src: &rs,
    }]);
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn pack_tag_written_but_never_expected_fires_at_its_definition() {
    let rs = load("pack_format_fire.rs");
    let f = check_wire(&[WireSource {
        role: WireRole::PackFormat,
        path: PACK_FORMAT_RS,
        src: &rs,
    }]);
    assert_eq!(rules(&f), ["wire-drift"], "{f:#?}");
    assert!(f[0].message.contains("CCQPACK"), "{f:#?}");
    assert!(f[0].message.contains("TAG_STATE"), "{f:#?}");
    assert!(f[0].message.contains("used on 1 side(s)"), "{f:#?}");
    assert!(f[0].related.is_some(), "{f:#?}");
}

#[test]
fn run_state_and_pack_tags_do_not_cross_pollinate() {
    // A tag used on both sides of CCQPACK must not count toward a
    // CCQRUNS tag of the same name, and vice versa: the two formats'
    // facts are collected in separate pools.
    let run_state = load("run_state_fire.rs");
    let pack = load("pack_format_clean.rs");
    let f = check_wire(&[
        WireSource {
            role: WireRole::RunState,
            path: RUN_STATE_RS,
            src: &run_state,
        },
        WireSource {
            role: WireRole::PackFormat,
            path: PACK_FORMAT_RS,
            src: &pack,
        },
    ]);
    assert_eq!(rules(&f), ["wire-drift"], "{f:#?}");
    assert_eq!(f[0].path, RUN_STATE_RS, "{f:#?}");
    assert!(f[0].message.contains("CCQRUNS"), "{f:#?}");
}
