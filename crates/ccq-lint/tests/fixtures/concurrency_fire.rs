//! Fixture: the concurrency anti-patterns — descent state behind a
//! lock, an ad-hoc thread pool, and a raw `std::thread::spawn`, all of
//! which bypass the sanctioned deterministic rayon configuration.

use std::sync::Mutex;

pub struct Shared {
    scores: Mutex<Vec<f32>>,
}

pub fn fan_out(shared: &Shared) {
    let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build();
    std::thread::spawn(|| {});
    let _ = (pool, shared);
}
