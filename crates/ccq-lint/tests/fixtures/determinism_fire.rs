//! Fixture: every determinism pattern fires in protected library code.

use std::collections::HashMap;
use std::time::{Instant, SystemTime};

fn pi_by_layer() -> HashMap<usize, f32> {
    HashMap::new()
}

fn stamp() -> u64 {
    let _t = Instant::now();
    let _w = SystemTime::UNIX_EPOCH;
    0
}
