//! Fixture: the sanctioned durable-write idiom — tmp sibling, fsync,
//! rename into place. Mirrors `write_atomic_inner` in
//! `crates/core/src/run_state.rs`.

use std::fs;
use std::io::Write;
use std::path::Path;

pub fn save_config(dir: &Path, text: &str) -> std::io::Result<()> {
    let tmp = dir.join("config.tmp");
    let mut f = fs::File::create(&tmp)?;
    f.write_all(text.as_bytes())?;
    f.sync_all()?;
    fs::rename(&tmp, dir.join("config"))?;
    Ok(())
}
