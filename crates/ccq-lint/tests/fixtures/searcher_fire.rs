//! A searcher implementation built on exactly the storage and clocks
//! the determinism rule bans: per-slot scores in a `HashMap` (iteration
//! order decides ties nondeterministically) and probe timing read off
//! `Instant::now()` feeding the decision.

use std::collections::HashMap;
use std::time::Instant;

pub struct BadSearcher {
    scores: HashMap<usize, f32>,
    started: Instant,
}

impl BadSearcher {
    pub fn new() -> Self {
        BadSearcher {
            scores: HashMap::new(),
            started: Instant::now(),
        }
    }

    pub fn pick(&self) -> Option<usize> {
        // First key wins — whichever that is today.
        let budget_left = self.started.elapsed().as_millis() < 50;
        self.scores.keys().next().copied().filter(|_| budget_left)
    }
}

/// Gated behind a feature no Cargo.toml declares: the hygiene rule
/// keeps phantom searcher variants from silently never compiling.
#[cfg(feature = "experimental-searchers")]
pub fn experimental_pick() -> usize {
    0
}

