//! Fixture: waivers must carry a reason; these are all rejected (and the
//! violations they fail to cover still fire).

// ccq-lint: allow(panic-surface)
fn bare(x: Option<u32>) -> u32 {
    x.unwrap() // ccq-lint: allow(panic-surface) —
}

// ccq-lint: allow(made-up-rule) — reason present but the rule is unknown
fn unknown(x: Option<u32>) -> u32 {
    x.unwrap()
}
