//! Fixture: panic-surface violations carrying reasoned waivers, both
//! standalone (covers the next line) and trailing (covers its own line).

fn hot_path(x: Option<u32>) -> u32 {
    // ccq-lint: allow(panic-surface) — x is Some by construction two lines up
    let a = x.unwrap();
    a + 1 // and a trailing form below
}

fn trailing(x: Option<u32>) -> u32 {
    x.unwrap() // ccq-lint: allow(panic-surface) — caller validated x
}
