// ccq-lint: allow-file(determinism) — no hashes remain in this harness
//! Fixture: waivers that outlived their violations. The file-level
//! determinism waiver and the line waiver on `compute()` suppress
//! nothing and must each be flagged; the trailing waiver on the
//! `unwrap` line still earns its keep.

pub fn main() {
    // ccq-lint: allow(panic-surface) — was an unwrap, now returns a typed error
    let x = compute();
    let y = x.unwrap(); // ccq-lint: allow(panic-surface) — checked non-empty above
    let _ = y;
}
