//! Fixture: a waived float-literal comparison (exact sentinel).

fn is_unset(x: f32) -> bool {
    // ccq-lint: allow(float-eq) — exact-zero sentinel written by the initializer, never computed
    x == 0.0
}
