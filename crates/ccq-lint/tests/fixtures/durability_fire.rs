//! Fixture: the durability anti-patterns — `File::create` on the final
//! path, and a `rename` with no `sync_all` in the same function. A
//! power cut between the rename and the (absent) fsync loses the state
//! the caller was just told is safe.

use std::fs;
use std::io::Write;

pub fn save_config(path: &str, text: &str) -> std::io::Result<()> {
    let mut f = fs::File::create(path)?;
    f.write_all(text.as_bytes())?;
    fs::rename(path, "config.bak")?;
    Ok(())
}
