//! Fixture: declared features pass; an undeclared one carries a waiver.

#[cfg(feature = "parallel")]
fn declared() {}

// ccq-lint: allow(feature-hygiene) — feature lands in the next PR; gate merged first
#[cfg(feature = "speculative")]
fn speculative() {}
