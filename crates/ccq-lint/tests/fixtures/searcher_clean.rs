//! The searcher idiom as `crates/core/src/searcher.rs` actually writes
//! it: slot-indexed `Vec` state (no hash containers), logical step
//! counters instead of wall-clock budgets, typed errors instead of
//! unwraps, and tie-breaks by explicit slot order so the same spec
//! always makes the same decision.

pub struct SearchError(pub String);

pub struct MiniSearcher {
    /// Policy mass per expert slot, dense and slot-indexed.
    weights: Vec<f32>,
    /// Probe rounds taken so far — the only "clock" a searcher sees.
    rounds: u64,
}

impl MiniSearcher {
    pub fn new(slots: usize) -> Self {
        MiniSearcher {
            weights: vec![1.0; slots],
            rounds: 0,
        }
    }

    pub fn restore(&mut self, weights: Vec<f32>, expected_slots: usize) -> Result<(), SearchError> {
        if weights.len() != expected_slots {
            return Err(SearchError(format!(
                "saved state has {} slots, expected {expected_slots}",
                weights.len()
            )));
        }
        self.weights = weights;
        Ok(())
    }

    pub fn pick(&mut self) -> Option<usize> {
        self.rounds += 1;
        // Deterministic argmax: strict inequality keeps the lowest slot
        // on ties, independent of container iteration order.
        let mut best: Option<(usize, f32)> = None;
        for (slot, &w) in self.weights.iter().enumerate() {
            if best.is_none_or(|(_, bw)| w > bw) {
                best = Some((slot, w));
            }
        }
        best.map(|(slot, _)| slot)
    }

    #[cfg(feature = "parallel")]
    pub fn rounds(&self) -> u64 {
        self.rounds
    }
}
