//! Fixture: the same determinism violations, each carrying a reasoned
//! waiver.

// ccq-lint: allow(determinism) — keys are drained through a sorted Vec before any iteration
use std::collections::HashMap;

fn count() -> usize {
    // ccq-lint: allow(determinism) — construction only; iteration happens on the sorted view
    let m: HashMap<usize, f32> = HashMap::new();
    m.len()
}
