//! Fixture: every panic-surface pattern fires in protected library code.

fn hot_path(x: Option<u32>, r: Result<u32, String>) -> u32 {
    let a = x.unwrap();
    let b = r.expect("always ok");
    if a + b > 100 {
        panic!("overflow");
    }
    match a {
        0 => unreachable!(),
        1 => todo!(),
        2 => unimplemented!(),
        _ => a + b,
    }
}
