//! Fixture: a waived rename — the moved file is already durable, and
//! the transition is made durable by a directory fsync, so the
//! same-function `sync_all` requirement is intentionally not met.
//! Mirrors `move_job` in `crates/serve/src/spool.rs`.

use std::fs;
use std::path::Path;

pub fn promote(src: &Path, dst: &Path) -> std::io::Result<()> {
    // ccq-lint: allow(durability) — src was fsynced by its writer; the move is made durable by the dir fsync below
    fs::rename(src, dst)?;
    fs::File::open(dst.parent().unwrap_or(Path::new(".")))?.sync_all()?;
    Ok(())
}
