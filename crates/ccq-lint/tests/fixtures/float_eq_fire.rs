//! Fixture: float-literal comparisons fire in library code.

fn checks(x: f32) -> bool {
    let a = x == 0.0;
    let b = 1.5 != x;
    let c = x == -2.5e3;
    a || b || c
}
