//! Fixture: the sanctioned wall-clock pattern — the same read carrying
//! the reasoned waiver `clock.rs` uses — lints clean.

use std::time::Instant;

struct SanctionedClock {
    origin: Instant,
}

impl SanctionedClock {
    fn new() -> Self {
        Self {
            // ccq-lint: allow(determinism) — the sanctioned wall-clock read; ManualClock is injected wherever reproducibility matters
            origin: Instant::now(),
        }
    }

    fn micros(&self) -> u128 {
        self.origin.elapsed().as_micros()
    }
}
