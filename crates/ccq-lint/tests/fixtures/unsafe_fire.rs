//! Fixture: `unsafe` fires everywhere, even inside test modules.

fn peek(v: &[u8]) -> u8 {
    unsafe { *v.get_unchecked(0) }
}

#[cfg(test)]
mod tests {
    #[test]
    fn still_fires_in_tests() {
        let v = [1u8];
        let _ = unsafe { *v.as_ptr() };
    }
}
