//! Fixture: sanctioned concurrency — scoped threads (joined before the
//! scope returns) and lazy one-time init are fine; only ad-hoc pools,
//! raw detached spawns, and hot-path locks are banned.

use std::sync::OnceLock;

static LIMIT: OnceLock<usize> = OnceLock::new();

pub fn fan_out(chunks: &mut [f32]) {
    std::thread::scope(|s| {
        for c in chunks.chunks_mut(8) {
            s.spawn(move || c.iter_mut().for_each(|x| *x += 1.0));
        }
    });
}
