//! Fixture: pattern text inside comments, strings, raw strings, byte
//! strings, and char literals must never fire. This file is clean.

// A comment mentioning unwrap() and panic! and unsafe and HashMap.
/* Block comment: x.unwrap(); Instant::now(); feature = "phantom" */

fn literals() -> (String, String, &'static [u8], char) {
    let plain = "call .unwrap() then panic!(\"boom\") unsafe { HashMap }".to_string();
    let raw = r#"feature = "phantom" and SystemTime and 1.0 == 2.0"#.to_string();
    let bytes: &'static [u8] = b"unsafe unwrap() Instant::now()";
    let ch = '"';
    let _lifetime_not_char: &'static str = "see above";
    (plain, raw, bytes, ch)
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap_and_compare() {
        let x: Option<f32> = Some(0.0);
        assert!(x.unwrap() == 0.0);
    }
}
