//! Fixture: waived concurrency — a deliberately serial pool with the
//! invariant spelled out, mirroring `single_thread_pool` in
//! `crates/nn/src/train.rs`.

pub fn serial_pool() -> rayon::ThreadPool {
    // ccq-lint: allow(concurrency) — a single-thread pool pins deterministic reduction order
    rayon::ThreadPoolBuilder::new().num_threads(1).build().ok().into_iter().next().unwrap_or_else(|| todo_pool())
}
