//! Fixture: a wall-clock read smuggled into ordinary library code —
//! i.e. *outside* the one waived site in `clock.rs` — must still fire.

use std::time::Instant;

struct SneakyClock {
    origin: Instant,
}

impl SneakyClock {
    fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }

    fn micros(&self) -> u128 {
        self.origin.elapsed().as_micros()
    }
}
