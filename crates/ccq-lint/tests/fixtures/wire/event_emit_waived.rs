//! Fixture: a forward-compat key emitted on purpose. The decoder never
//! reads `schema`, but the standalone wire-drift waiver records why the
//! asymmetry is intended, so the pair lints clean.

pub fn event_json(ev: &Event) -> String {
    match ev {
        Event::Baseline { accuracy } => {
            // ccq-lint: allow(wire-drift) — forward-compat schema tag; decoders ignore unknown keys
            format!("{{\"event\":\"baseline\",\"accuracy\":{accuracy},\"schema\":1}}")
        }
        Event::Step { step, lr } => {
            format!("{{\"event\":\"step\",\"step\":{step},\"lr\":{lr}}}")
        }
    }
}
