//! Fixture: a drifted emitter. Against `event_parse_clean.rs` this
//! fires four ways: `learning_rate` is emitted but the decoder still
//! reads `lr`; the `autosave` kind (and its `path` key) is emitted with
//! no decode arm.

pub fn event_json(ev: &Event) -> String {
    match ev {
        Event::Baseline { accuracy } => {
            format!("{{\"event\":\"baseline\",\"accuracy\":{accuracy}}}")
        }
        Event::Step { step, lr } => {
            format!("{{\"event\":\"step\",\"step\":{step},\"learning_rate\":{lr}}}")
        }
        Event::Autosave { path } => {
            format!("{{\"event\":\"autosave\",\"path\":\"{path}\"}}")
        }
    }
}
