//! Fixture: a wire-drift waiver that suppresses nothing — the emitter
//! is symmetric with `event_parse_clean.rs`, so the waiver itself must
//! be flagged stale.

pub fn event_json(ev: &Event) -> String {
    match ev {
        Event::Baseline { accuracy } => {
            // ccq-lint: allow(wire-drift) — left over from a removed schema tag
            format!("{{\"event\":\"baseline\",\"accuracy\":{accuracy}}}")
        }
        Event::Step { step, lr } => {
            format!("{{\"event\":\"step\",\"step\":{step},\"lr\":{lr}}}")
        }
    }
}
