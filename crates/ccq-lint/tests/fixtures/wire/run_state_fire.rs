//! Fixture: a section tag written but never decoded — `TAG_ZERO` is
//! pushed by the encoder, but the decoder has no arm for it, so every
//! restart drops the zero-mask section on the floor.

const TAG_HEDGE: u8 = 0x01;
const TAG_ZERO: u8 = 0x02;

pub fn to_bytes(state: &State, out: &mut Vec<u8>) {
    match state {
        State::Hedge => out.push(TAG_HEDGE),
        State::Zero => out.push(TAG_ZERO),
    }
}

pub fn from_bytes(b: &[u8]) -> Result<State, DecodeError> {
    match b.first() {
        Some(&TAG_HEDGE) => Ok(State::Hedge),
        _ => Err(DecodeError::Truncated),
    }
}
