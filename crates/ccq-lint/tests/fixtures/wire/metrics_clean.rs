//! Fixture: a miniature metrics recorder registering the two families
//! that `golden_clean.txt` snapshots.

pub fn on_event(&mut self) {
    self.registry.inc("ccq_events_total", &[], 1);
    self.registry.set_gauge("ccq_step", &[], 1.0);
}
