//! Fixture: the decode side matching `event_emit_clean.rs` — every
//! emitted key is read back and every emitted kind has a match arm.

pub fn decode_event(v: &Json) -> Result<Event, String> {
    match v.str_field("event")?.as_str() {
        "baseline" => Ok(Event::Baseline {
            accuracy: v.f32_field("accuracy")?,
        }),
        "step" => Ok(Event::Step {
            step: v.usize_field("step")?,
            lr: v.f32_field("lr")?,
        }),
        other => Err(format!("unknown event kind {other:?}")),
    }
}
