//! Fixture: CCQPACK-style section tags, each defined once and used on
//! both the writer and reader sides.

const TAG_META: u8 = 0;
const TAG_LAYERS: u8 = 1;

pub fn to_bytes(model: &Model, out: &mut Vec<u8>) {
    out.push(TAG_META);
    out.extend_from_slice(model.arch.as_bytes());
    out.push(TAG_LAYERS);
}

pub fn from_bytes(cur: &mut &[u8]) -> Result<Model, PackError> {
    expect_tag(cur, TAG_META, "meta")?;
    let arch = read_string(cur)?;
    expect_tag(cur, TAG_LAYERS, "layers")?;
    Ok(Model { arch })
}
