//! Fixture: a miniature event emitter whose JSON keys and `event`
//! kinds exactly match `event_parse_clean.rs` on the decode side.

pub fn event_json(ev: &Event) -> String {
    match ev {
        Event::Baseline { accuracy } => {
            format!("{{\"event\":\"baseline\",\"accuracy\":{accuracy}}}")
        }
        Event::Step { step, lr } => {
            format!("{{\"event\":\"step\",\"step\":{step},\"lr\":{lr}}}")
        }
    }
}
