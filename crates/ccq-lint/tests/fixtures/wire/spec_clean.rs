//! Fixture: a miniature job-spec round trip — every `key = value` line
//! the renderer writes is read back by the parser, and vice versa.

use std::fmt::Write as _;

pub fn render(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name = {}", spec.name);
    let _ = writeln!(out, "seed = {}", spec.seed);
    out
}

pub fn parse(text: &str) -> Result<Spec, SpecError> {
    let get = |key: &str| lookup(text, key);
    let name = get("name").ok_or(SpecError::Missing)?;
    let seed = get("seed").unwrap_or_default();
    Ok(Spec { name, seed })
}
