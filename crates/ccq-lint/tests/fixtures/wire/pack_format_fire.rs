//! Fixture: a section tag written but never matched — `TAG_STATE` is
//! pushed by the writer, but the reader never expects it, so a deployed
//! artifact's state section is silently dropped on load.

const TAG_META: u8 = 0;
const TAG_STATE: u8 = 2;

pub fn to_bytes(model: &Model, out: &mut Vec<u8>) {
    out.push(TAG_META);
    out.push(TAG_STATE);
}

pub fn from_bytes(cur: &mut &[u8]) -> Result<Model, PackError> {
    expect_tag(cur, TAG_META, "meta")?;
    Ok(Model::default())
}
