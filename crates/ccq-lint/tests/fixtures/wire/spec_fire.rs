//! Fixture: a drifted spec — the renderer writes `seed = …` but the
//! parser was renamed to read `rng_seed`, so submitted jobs silently
//! fall back to the default seed. Fires once per orphaned side.

use std::fmt::Write as _;

pub fn render(spec: &Spec) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "name = {}", spec.name);
    let _ = writeln!(out, "seed = {}", spec.seed);
    out
}

pub fn parse(text: &str) -> Result<Spec, SpecError> {
    let get = |key: &str| lookup(text, key);
    let name = get("name").ok_or(SpecError::Missing)?;
    let seed = get("rng_seed").unwrap_or_default();
    Ok(Spec { name, seed })
}
