//! Fixture: CCQRUNS-style section tags, each defined once and used on
//! both the encode and decode sides.

const TAG_HEDGE: u8 = 0x01;
const TAG_ZERO: u8 = 0x02;

pub fn to_bytes(state: &State, out: &mut Vec<u8>) {
    match state {
        State::Hedge => out.push(TAG_HEDGE),
        State::Zero => out.push(TAG_ZERO),
    }
}

pub fn from_bytes(b: &[u8]) -> Result<State, DecodeError> {
    match b.first() {
        Some(&TAG_HEDGE) => Ok(State::Hedge),
        Some(&TAG_ZERO) => Ok(State::Zero),
        _ => Err(DecodeError::Truncated),
    }
}
