//! A cache keyed on iteration-order-unstable storage and invalidated by
//! the wall clock — exactly what the determinism rule bans from the
//! activation-cache layer.

use std::collections::HashMap;
use std::time::Instant;

pub struct BadCache {
    filled_at: Instant,
    boundaries: HashMap<usize, Vec<f32>>,
}

impl BadCache {
    pub fn fill(boundaries: HashMap<usize, Vec<f32>>) -> Self {
        BadCache {
            filled_at: Instant::now(),
            boundaries,
        }
    }

    pub fn is_current(&self) -> bool {
        self.filled_at.elapsed().as_millis() < 5 && !self.boundaries.is_empty()
    }
}
