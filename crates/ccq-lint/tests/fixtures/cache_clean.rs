//! The activation-cache idiom as the workspace actually writes it:
//! ordered storage, a logical generation counter for invalidation (no
//! wall clock), typed errors instead of unwraps, and a BTreeMap for the
//! depth histogram so iteration order is stable run-to-run.

use std::collections::BTreeMap;

pub struct CacheError(pub String);

pub struct MiniCache {
    generation: u64,
    boundaries: Vec<Vec<f32>>,
    depth_hist: BTreeMap<usize, u64>,
}

impl MiniCache {
    pub fn fill(generation: u64, boundaries: Vec<Vec<f32>>) -> Self {
        MiniCache {
            generation,
            boundaries,
            depth_hist: BTreeMap::new(),
        }
    }

    pub fn check_current(&self, generation: u64) -> Result<(), CacheError> {
        if self.generation != generation {
            return Err(CacheError(format!(
                "cache filled at generation {}, network at {generation}",
                self.generation
            )));
        }
        Ok(())
    }

    pub fn record(&mut self, skipped: usize) {
        *self.depth_hist.entry(skipped).or_insert(0) += 1;
    }

    pub fn input(&self, segment: usize, batch: usize) -> Option<&f32> {
        self.boundaries.get(segment)?.get(batch)
    }
}
