//! Fixture: a waived `unsafe` (hypothetical FFI shim).

// ccq-lint: allow(no-unsafe) — vetted FFI call into the vendored BLAS shim
unsafe fn ffi_gemm() {}
