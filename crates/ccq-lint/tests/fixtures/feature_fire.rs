//! Fixture: cfg strings naming undeclared features fire everywhere,
//! including inside test modules and `cfg!` macros.

#[cfg(feature = "phantom")]
fn gated() {}

#[cfg(all(test, feature = "also-phantom"))]
mod tests {
    fn probe() -> bool {
        cfg!(feature = "third-phantom")
    }
}
