//! Fixture-driven tests: each rule family fires, each rule family is
//! waivable, reason-less waivers are rejected, and the lexer never
//! matches inside strings or comments.

use ccq_lint::{check_file, FileCtx, FileKind, Finding};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Lints a fixture as if it were library code of the protected `ccq`
/// crate with the real core feature set.
fn lint_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path).unwrap();
    let features: BTreeSet<String> = ["default", "parallel", "fault-inject"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let ctx = FileCtx {
        path: format!("crates/core/src/{name}"),
        crate_name: "ccq",
        kind: FileKind::LibrarySrc,
        features: &features,
    };
    check_file(&ctx, &src)
}

fn rules(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.rule).collect()
}

#[test]
fn determinism_fires() {
    let f = lint_fixture("determinism_fire.rs");
    // `HashMap` three times (use, return type, constructor),
    // `Instant::now`, and `SystemTime` twice (use + associated const).
    assert_eq!(rules(&f), ["determinism"; 6], "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("Instant::now")));
    assert!(f.iter().any(|x| x.message.contains("wall-clock")));
}

#[test]
fn determinism_waived() {
    let f = lint_fixture("determinism_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn wall_clock_outside_the_waived_clock_module_fires() {
    // A `WallClock` clone in ordinary library code does not inherit the
    // waiver `clock.rs` carries: the raw `Instant::now` still fires.
    let f = lint_fixture("determinism_clock_fire.rs");
    assert_eq!(rules(&f), ["determinism"], "{f:#?}");
    assert!(f[0].message.contains("Instant::now"), "{f:#?}");
}

#[test]
fn wall_clock_with_the_clock_module_waiver_is_clean() {
    let f = lint_fixture("determinism_clock_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn panic_surface_fires() {
    let f = lint_fixture("panic_fire.rs");
    // unwrap, expect, panic!, unreachable!, todo!, unimplemented!.
    assert_eq!(rules(&f), ["panic-surface"; 6], "{f:#?}");
}

#[test]
fn panic_surface_waived_standalone_and_trailing() {
    let f = lint_fixture("panic_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn no_unsafe_fires_even_in_tests() {
    let f = lint_fixture("unsafe_fire.rs");
    assert_eq!(rules(&f), ["no-unsafe"; 2], "{f:#?}");
}

#[test]
fn no_unsafe_waived() {
    let f = lint_fixture("unsafe_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn float_eq_fires() {
    let f = lint_fixture("float_eq_fire.rs");
    // `x == 0.0`, `1.5 != x`, `x == -2.5e3`.
    assert_eq!(rules(&f), ["float-eq"; 3], "{f:#?}");
}

#[test]
fn float_eq_waived() {
    let f = lint_fixture("float_eq_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn feature_hygiene_fires_for_undeclared_features() {
    let f = lint_fixture("feature_fire.rs");
    assert_eq!(rules(&f), ["feature-hygiene"; 3], "{f:#?}");
    for phantom in ["phantom", "also-phantom", "third-phantom"] {
        assert!(
            f.iter()
                .any(|x| x.message.contains(&format!("\"{phantom}\""))),
            "missing {phantom}: {f:#?}"
        );
    }
}

#[test]
fn feature_hygiene_accepts_declared_and_waived() {
    let f = lint_fixture("feature_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

/// Lints a fixture as if it were the activation-cache module of the
/// protected `ccq-nn` crate.
fn lint_cache_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path).unwrap();
    let features: BTreeSet<String> = ["default", "parallel"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let ctx = FileCtx {
        path: format!("crates/nn/src/{name}"),
        crate_name: "ccq-nn",
        kind: FileKind::LibrarySrc,
        features: &features,
    };
    check_file(&ctx, &src)
}

#[test]
fn cache_idiom_is_clean() {
    // The incremental-evaluation cache layer must stay free of banned
    // nondeterminism: generation counters instead of wall-clock
    // invalidation, ordered containers, typed errors. This fixture
    // mirrors `crates/nn/src/cache.rs` and must lint clean under the
    // same protected-crate rules that cover the real module.
    let f = lint_cache_fixture("cache_clean.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn nondeterministic_cache_fires() {
    // The anti-pattern the rules exist to catch: a HashMap-backed cache
    // invalidated by `Instant::now()`. Three `HashMap` mentions plus the
    // wall-clock read.
    let f = lint_cache_fixture("cache_fire.rs");
    assert_eq!(rules(&f), ["determinism"; 4], "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("iteration order")));
    assert!(f.iter().any(|x| x.message.contains("Instant::now")));
}

#[test]
fn searcher_idiom_is_clean() {
    // The pluggable-searcher surface must stay deterministic: dense
    // slot-indexed state, logical round counters, typed errors, and a
    // declared-feature gate. This fixture mirrors the idiom of
    // `crates/core/src/searcher.rs` and must lint clean under the same
    // protected-crate rules that cover the real module.
    let f = lint_fixture("searcher_clean.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn nondeterministic_searcher_fires() {
    // The anti-pattern the searcher rules exist to catch: HashMap-keyed
    // expert scores (tie-breaks follow iteration order), a wall-clock
    // probe budget, and a variant gated on an undeclared feature. Three
    // `HashMap` mentions, one `Instant::now`, one phantom feature.
    let f = lint_fixture("searcher_fire.rs");
    assert_eq!(
        rules(&f),
        [
            "determinism",
            "determinism",
            "determinism",
            "determinism",
            "feature-hygiene",
        ],
        "{f:#?}"
    );
    assert!(f.iter().any(|x| x.message.contains("iteration order")));
    assert!(f.iter().any(|x| x.message.contains("Instant::now")));
    assert!(f
        .iter()
        .any(|x| x.message.contains("\"experimental-searchers\"")));
}

#[test]
fn waiver_without_reason_is_rejected_and_covers_nothing() {
    let f = lint_fixture("waiver_no_reason.rs");
    let waiver_diags: Vec<_> = f.iter().filter(|x| x.rule == "waiver").collect();
    let panics: Vec<_> = f.iter().filter(|x| x.rule == "panic-surface").collect();
    // Two reason-less waivers + one unknown-rule waiver…
    assert_eq!(waiver_diags.len(), 3, "{f:#?}");
    assert!(waiver_diags
        .iter()
        .any(|x| x.message.contains("unknown rule")));
    // …and the unwraps they failed to cover still fire.
    assert_eq!(panics.len(), 2, "{f:#?}");
}

#[test]
fn nothing_fires_inside_strings_or_comments() {
    let f = lint_fixture("strings_comments.rs");
    assert!(f.is_empty(), "{f:#?}");
}

/// Lints a fixture as if it lived in the serve job spool, where the
/// durability rules apply.
fn lint_serve_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path).unwrap();
    let features: BTreeSet<String> = ["default"].iter().map(|s| s.to_string()).collect();
    let ctx = FileCtx {
        path: format!("crates/serve/src/{name}"),
        crate_name: "ccq-serve",
        kind: FileKind::LibrarySrc,
        features: &features,
    };
    check_file(&ctx, &src)
}

/// Lints a fixture as if it were a bench harness binary, where
/// file-level waivers are legal.
fn lint_bench_bin_fixture(name: &str) -> Vec<Finding> {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    let src = fs::read_to_string(&path).unwrap();
    let features: BTreeSet<String> = ["default"].iter().map(|s| s.to_string()).collect();
    let ctx = FileCtx {
        path: format!("crates/bench/src/bin/{name}"),
        crate_name: "ccq-bench",
        kind: FileKind::BinSrc,
        features: &features,
    };
    check_file(&ctx, &src)
}

#[test]
fn durability_fires_on_bare_create_and_unsynced_rename() {
    let f = lint_serve_fixture("durability_fire.rs");
    // `File::create` on the final path, and a `rename` with no
    // `sync_all` earlier in the same function.
    assert_eq!(rules(&f), ["durability"; 2], "{f:#?}");
    assert!(
        f.iter().any(|x| x.message.contains("File::create")),
        "{f:#?}"
    );
    assert!(f.iter().any(|x| x.message.contains("sync_all")), "{f:#?}");
}

#[test]
fn durability_tmp_fsync_rename_idiom_is_clean() {
    let f = lint_serve_fixture("durability_clean.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn durability_waived_rename_is_clean_and_waiver_is_live() {
    // The waiver both suppresses the rename finding and is counted as
    // used, so no stale-waiver diagnostic appears either.
    let f = lint_serve_fixture("durability_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn concurrency_fires_on_locks_pools_and_raw_spawns() {
    let f = lint_fixture("concurrency_fire.rs");
    // `Mutex` twice (import + field), `ThreadPoolBuilder`, and
    // `std::thread::spawn`.
    assert_eq!(rules(&f), ["concurrency"; 4], "{f:#?}");
    assert!(f.iter().any(|x| x.message.contains("Mutex")), "{f:#?}");
    assert!(
        f.iter()
            .any(|x| x.message.contains("thread-pool construction")),
        "{f:#?}"
    );
}

#[test]
fn concurrency_scoped_threads_are_clean() {
    let f = lint_fixture("concurrency_clean.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn concurrency_waived_serial_pool_is_clean() {
    let f = lint_fixture("concurrency_waived.rs");
    assert!(f.is_empty(), "{f:#?}");
}

#[test]
fn stale_waivers_fire_at_the_waiver_site() {
    let f = lint_bench_bin_fixture("stale_waiver_fire.rs");
    // The file-level determinism waiver (line 1) and the line waiver
    // over `compute()` (line 8) suppress nothing; the trailing waiver
    // on the unwrap line is live, so the unwrap itself stays quiet.
    assert_eq!(rules(&f), ["stale-waiver"; 2], "{f:#?}");
    assert_eq!(f[0].line, 1, "{f:#?}");
    assert_eq!(f[1].line, 8, "{f:#?}");
    assert!(f.iter().all(|x| x.message.contains("suppresses nothing")));
}

#[test]
fn diagnostics_carry_file_line_col() {
    let f = lint_fixture("panic_fire.rs");
    let first = f.first().unwrap().to_string();
    // `file:line:col: rule: message`, greppable and editor-clickable.
    assert!(
        first.starts_with("crates/core/src/panic_fire.rs:4:"),
        "{first}"
    );
    assert!(first.contains(": panic-surface: "), "{first}");
}
