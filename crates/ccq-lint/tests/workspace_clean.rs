//! The self-test the suite gate relies on: the real workspace must lint
//! clean. If this fails, either fix the violation or waive it with a
//! reasoned `// ccq-lint: allow(rule) — reason` (see DESIGN.md §10).

use std::path::Path;

#[test]
fn real_workspace_is_clean() {
    let root = ccq_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    assert!(
        root.join("crates").is_dir(),
        "workspace root not found from {}",
        env!("CARGO_MANIFEST_DIR")
    );
    let findings = ccq_lint::lint_workspace(&root).unwrap();
    assert!(
        findings.is_empty(),
        "workspace has lint findings:\n{}",
        findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn protected_crates_exist() {
    // The determinism/panic-surface scope list must track real crates;
    // a rename would silently unprotect one.
    let root = ccq_lint::find_workspace_root(Path::new(env!("CARGO_MANIFEST_DIR")));
    for name in ccq_lint::rules::PROTECTED_CRATES {
        let dir = match name {
            "ccq" => "core".to_string(),
            other => other.trim_start_matches("ccq-").to_string(),
        };
        let manifest = root.join("crates").join(&dir).join("Cargo.toml");
        let toml = std::fs::read_to_string(&manifest)
            .unwrap_or_else(|_| panic!("missing {}", manifest.display()));
        assert!(
            toml.contains(&format!("name = \"{name}\"")),
            "crates/{dir} is not package {name}"
        );
    }
}
