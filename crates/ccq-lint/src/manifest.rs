//! A tiny, dependency-free reader for the slice of `Cargo.toml` the
//! lint rules need: the package name and the set of features a crate
//! declares (explicit `[features]` keys plus implicit features from
//! optional dependencies).

use std::collections::BTreeSet;

/// The lint-relevant facts about one crate manifest.
#[derive(Debug, Clone, Default)]
pub struct Manifest {
    /// `package.name`.
    pub name: String,
    /// Feature names `#[cfg(feature = "…")]` may legally reference:
    /// `[features]` keys and optional dependency names.
    pub features: BTreeSet<String>,
}

/// Parses the subset of TOML this lint needs. Line-based on purpose: it
/// handles the manifests in this workspace (and anything `cargo fmt`-style
/// formatted), not arbitrary TOML.
pub fn parse(toml: &str) -> Manifest {
    let mut m = Manifest::default();
    let mut section = String::new();
    for raw in toml.lines() {
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            section = line.trim_matches(['[', ']']).to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().trim_matches('"');
        let value = value.trim();
        if section == "package" && key == "name" {
            m.name = value.trim_matches('"').to_string();
        } else if section == "features" {
            m.features.insert(key.to_string());
        } else if section.ends_with("dependencies") && value.contains("optional") {
            // `foo = { version = "...", optional = true }` declares an
            // implicit `foo` feature unless every reference uses `dep:`;
            // accepting it unconditionally only makes the lint lenient.
            if value.contains("optional = true") {
                m.features.insert(key.to_string());
            }
        }
    }
    m
}

/// Drops a `# comment` unless the `#` sits inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, b) in line.bytes().enumerate() {
        match b {
            b'"' => in_str = !in_str,
            b'#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_name_features_and_optional_deps() {
        let m = parse(
            r#"
[package]
name = "ccq-core" # trailing comment

[dependencies]
rayon = { workspace = true, optional = true }
serde.workspace = true

[features]
default = ["parallel"]
# a comment line
parallel = ["dep:rayon"]
fault-inject = []
"#,
        );
        assert_eq!(m.name, "ccq-core");
        for f in ["default", "parallel", "fault-inject", "rayon"] {
            assert!(m.features.contains(f), "missing {f}");
        }
        assert!(!m.features.contains("serde"));
    }
}
