//! The `ccq-lint` CLI: lints the workspace and exits non-zero on any
//! finding.
//!
//! ```text
//! ccq-lint [ROOT] [--format text|json] [--list-rules] [--explain RULE]
//! ```
//!
//! Text diagnostics go to stderr in `file:line:col: rule: message` form
//! so `results/lint.log` captures them verbatim; `--format json` writes
//! the machine-readable document to stdout (archived as
//! `results/lint.json` by `run_suite.sh`). Exit codes: 0 clean, 1
//! findings, 2 usage or scan error.

// JSON diagnostics, the rule registry, and --explain output are the
// bin's contract: stdout IS the machine-readable product here.
#![allow(clippy::print_stdout)]

use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn usage() -> &'static str {
    "usage: ccq-lint [ROOT] [--format text|json] [--list-rules] [--explain RULE]"
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut root: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                other => {
                    eprintln!(
                        "ccq-lint: --format expects `text` or `json`, got {:?}\n{}",
                        other.unwrap_or("nothing"),
                        usage()
                    );
                    return ExitCode::from(2);
                }
            },
            "--list-rules" => {
                for r in &ccq_lint::RULES {
                    println!("{:15} {}", r.name, r.scope);
                }
                return ExitCode::SUCCESS;
            }
            "--explain" => {
                let Some(name) = args.next() else {
                    eprintln!("ccq-lint: --explain expects a rule name\n{}", usage());
                    return ExitCode::from(2);
                };
                let Some(r) = ccq_lint::rule_info(&name) else {
                    eprintln!("ccq-lint: unknown rule `{name}`; try --list-rules for the full set");
                    return ExitCode::from(2);
                };
                println!("{}", r.name);
                println!("  scope:     {}", r.scope);
                println!("  rationale: {}", r.rationale);
                println!("  waivers:   {}", r.waiver_policy);
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            _ if a.starts_with('-') => {
                eprintln!("ccq-lint: unknown flag `{a}`\n{}", usage());
                return ExitCode::from(2);
            }
            _ => {
                if root.is_some() {
                    eprintln!("ccq-lint: more than one ROOT given\n{}", usage());
                    return ExitCode::from(2);
                }
                root = Some(PathBuf::from(a));
            }
        }
    }
    let root = root.unwrap_or_else(|| {
        ccq_lint::find_workspace_root(
            &std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
        )
    });
    let findings = match ccq_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ccq-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    match format {
        Format::Json => {
            print!("{}", ccq_lint::render_json(&findings));
        }
        Format::Text => {
            for f in &findings {
                eprintln!("{f}");
            }
        }
    }
    if findings.is_empty() {
        eprintln!("ccq-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("ccq-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
