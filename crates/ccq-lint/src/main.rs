//! The `ccq-lint` CLI: lints the workspace and exits non-zero on any
//! finding. Diagnostics go to stderr in `file:line:col: rule: message`
//! form so `results/lint.log` captures them verbatim.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = match std::env::args().nth(1) {
        Some(p) => PathBuf::from(p),
        None => ccq_lint::find_workspace_root(
            &std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
        ),
    };
    let findings = match ccq_lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("ccq-lint: cannot scan {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    for f in &findings {
        eprintln!("{f}");
    }
    if findings.is_empty() {
        eprintln!("ccq-lint: workspace clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("ccq-lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}
