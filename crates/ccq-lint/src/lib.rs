//! `ccq-lint` — a dependency-free source-level lint pass for the CCQ
//! workspace.
//!
//! CCQ's headline guarantees are behavioral: bit-identical runs at any
//! thread count, interrupted + resumed ≡ uninterrupted, and golden-digest
//! equivalence across engine refactors. Those invariants are easy to
//! break silently — one `HashMap` in the Hedge update, one
//! `Instant::now()` in a descent decision, one bare `unwrap()` in the
//! autosave path, one JSON key renamed on only one side of the wire.
//! This crate makes them machine-checked on every commit:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `determinism` | library code of [`rules::PROTECTED_CRATES`] | `HashMap`/`HashSet`, `Instant::now`, `SystemTime` |
//! | `panic-surface` | library code of [`rules::PROTECTED_CRATES`], `examples/`, ccq-bench bins | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `no-unsafe` | everywhere | `unsafe` |
//! | `float-eq` | library code, all crates | `==`/`!=` against a float literal |
//! | `feature-hygiene` | everywhere | `feature = "…"` strings not declared in the crate's `Cargo.toml` |
//! | `durability` | [`rules::DURABILITY_PATHS`] + `crates/serve/src/**` | `rename` without a same-function `sync_all`; `File::create` on a final path |
//! | `concurrency` | library code outside [`rules::SANCTIONED_POOL_PATHS`] | `ThreadPoolBuilder`, `std::thread::spawn`; `Mutex`/`RwLock` in [`rules::LOCK_FREE_CRATES`] |
//! | `wire-drift` | cross-file (see [`extract`]) | serialized keys emitted but never parsed, or parsed but never emitted |
//! | `stale-waiver` | every waiver | waivers that suppress nothing |
//!
//! Test code (`tests/`, `#[cfg(test)]` items, `#[test]` fns) is exempt
//! from `determinism`, `panic-surface`, `float-eq`, and `durability`.
//! Intentional violations carry `// ccq-lint: allow(rule) — reason`
//! waivers (or `allow-file` in non-library files); the reason is
//! mandatory, and a waiver that stops suppressing anything becomes a
//! `stale-waiver` finding. See [`rules`] for details and `DESIGN.md`
//! §10/§16 for the policy.
//!
//! Run it with `cargo run -q -p ccq-lint` from anywhere in the
//! workspace; it exits non-zero when anything fires. `--format json`
//! emits machine-readable diagnostics on stdout (archived as
//! `results/lint.json` by `run_suite.sh`), `--list-rules` and
//! `--explain <rule>` document the rule set.

pub mod extract;
pub mod lexer;
pub mod manifest;
pub mod rules;

pub use extract::{check_wire, WireRole, WireSource};
pub use rules::{check_file, rule_info, FileCtx, FileKind, Finding, Related, RuleInfo, RULES};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints every first-party crate of the workspace rooted at `root` (the
/// root package plus each `crates/*` member), then cross-checks the
/// wire-format files against each other. `vendor/` (third-party
/// stand-ins) and directories named `fixtures` or `target` are skipped.
///
/// # Errors
///
/// Propagates I/O failures reading directories or files; individual
/// crates without a `Cargo.toml` are skipped silently.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut crate_dirs = vec![root.to_path_buf()];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        crate_dirs.extend(members);
    }
    let mut findings = Vec::new();
    for dir in crate_dirs {
        let Ok(toml) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let m = manifest::parse(&toml);
        for (sub, kind) in [
            ("src", FileKind::LibrarySrc),
            ("tests", FileKind::TestSrc),
            ("examples", FileKind::ExampleSrc),
            ("benches", FileKind::BenchSrc),
        ] {
            let sub_dir = dir.join(sub);
            if !sub_dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&sub_dir, &mut files)?;
            for file in files {
                let kind = if kind == FileKind::LibrarySrc && under_bin(&file, &sub_dir) {
                    FileKind::BinSrc
                } else {
                    kind
                };
                let src = fs::read_to_string(&file)?;
                let ctx = FileCtx {
                    path: display_path(&file, root),
                    crate_name: &m.name,
                    kind,
                    features: &m.features,
                };
                findings.extend(check_file(&ctx, &src));
            }
        }
    }
    findings.extend(wire_pass(root)?);
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    Ok(findings)
}

/// The fixed role map of the cross-file pass: workspace-relative path →
/// which half of which wire format it holds.
pub const WIRE_ROLES: [(&str, WireRole); 7] = [
    ("crates/core/src/event.rs", WireRole::EventEmit),
    ("crates/core/src/replay.rs", WireRole::EventParse),
    ("crates/serve/src/spec.rs", WireRole::Spec),
    ("crates/core/src/metrics.rs", WireRole::Metrics),
    (
        "crates/core/tests/golden/metrics.txt",
        WireRole::GoldenMetrics,
    ),
    ("crates/core/src/run_state.rs", WireRole::RunState),
    ("crates/infer/src/format.rs", WireRole::PackFormat),
];

/// Reads whichever wire-format files exist under `root` and cross-checks
/// them; formats with a missing half are skipped, so the pass also works
/// on partial trees (the seeded-drift smoke check in `run_suite.sh`
/// copies just the event/replay pair into a scratch root).
fn wire_pass(root: &Path) -> io::Result<Vec<Finding>> {
    let mut owned: Vec<(String, String, WireRole)> = Vec::new();
    for (rel, role) in WIRE_ROLES {
        let mut p = root.to_path_buf();
        for part in rel.split('/') {
            p.push(part);
        }
        if p.is_file() {
            owned.push((rel.to_string(), fs::read_to_string(&p)?, role));
        }
    }
    let sources: Vec<WireSource<'_>> = owned
        .iter()
        .map(|(path, src, role)| WireSource {
            role: *role,
            path,
            src,
        })
        .collect();
    Ok(check_wire(&sources))
}

/// Renders findings as the stable machine-readable diagnostics document
/// archived by CI. Byte-stable for a given finding list: fixed field
/// order, one finding per line, sorted input preserved verbatim.
pub fn render_json(findings: &[Finding]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"version\": 1,\n");
    s.push_str(&format!("  \"count\": {},\n", findings.len()));
    if findings.is_empty() {
        s.push_str("  \"findings\": []\n}\n");
        return s;
    }
    s.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"message\": {}",
            json_str(&f.path),
            f.line,
            f.col,
            json_str(f.rule),
            json_str(&f.message),
        ));
        if let Some(r) = &f.related {
            s.push_str(&format!(
                ", \"related\": {{\"file\": {}, \"line\": {}, \"col\": {}}}",
                json_str(&r.path),
                r.line,
                r.col,
            ));
        }
        s.push('}');
        if i + 1 < findings.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n}\n");
    s
}

/// JSON string literal with the mandatory escapes.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Recursively collects `.rs` files in sorted order, skipping `fixtures`
/// and `target` directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "fixtures" && name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether `file` sits under `<src>/bin/`.
fn under_bin(file: &Path, src_dir: &Path) -> bool {
    file.strip_prefix(src_dir)
        .ok()
        .and_then(|rel| rel.components().next())
        .is_some_and(|c| c.as_os_str() == "bin")
}

/// `file` relative to the workspace root, with `/` separators.
fn display_path(file: &Path, root: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`; falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        if let Ok(toml) = fs::read_to_string(dir.join("Cargo.toml")) {
            if toml.lines().any(|l| l.trim() == "[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}
