//! `ccq-lint` — a dependency-free source-level lint pass for the CCQ
//! workspace.
//!
//! CCQ's headline guarantees are behavioral: bit-identical runs at any
//! thread count, interrupted + resumed ≡ uninterrupted, and golden-digest
//! equivalence across engine refactors. Those invariants are easy to
//! break silently — one `HashMap` in the Hedge update, one
//! `Instant::now()` in a descent decision, one bare `unwrap()` in the
//! autosave path. This crate makes them machine-checked on every commit:
//!
//! | rule | scope | forbids |
//! |------|-------|---------|
//! | `determinism` | library code of [`rules::PROTECTED_CRATES`] | `HashMap`/`HashSet`, `Instant::now`, `SystemTime` |
//! | `panic-surface` | library code of [`rules::PROTECTED_CRATES`] | `.unwrap()`, `.expect(`, `panic!`, `unreachable!`, `todo!`, `unimplemented!` |
//! | `no-unsafe` | everywhere | `unsafe` |
//! | `float-eq` | library code, all crates | `==`/`!=` against a float literal |
//! | `feature-hygiene` | everywhere | `feature = "…"` strings not declared in the crate's `Cargo.toml` |
//!
//! Test code (`tests/`, `#[cfg(test)]` items, `#[test]` fns) is exempt
//! from `determinism`, `panic-surface`, and `float-eq`. Intentional
//! violations carry `// ccq-lint: allow(rule) — reason` waivers; the
//! reason is mandatory. See [`rules`] for details and `DESIGN.md` §10
//! for the policy.
//!
//! Run it with `cargo run -q -p ccq-lint` from anywhere in the
//! workspace; it exits non-zero when anything fires.

pub mod lexer;
pub mod manifest;
pub mod rules;

pub use rules::{check_file, FileCtx, FileKind, Finding};

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Lints every first-party crate of the workspace rooted at `root`: the
/// root package plus each `crates/*` member. `vendor/` (third-party
/// stand-ins) and directories named `fixtures` or `target` are skipped.
///
/// # Errors
///
/// Propagates I/O failures reading directories or files; individual
/// crates without a `Cargo.toml` are skipped silently.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut crate_dirs = vec![root.to_path_buf()];
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        members.sort();
        crate_dirs.extend(members);
    }
    let mut findings = Vec::new();
    for dir in crate_dirs {
        let Ok(toml) = fs::read_to_string(dir.join("Cargo.toml")) else {
            continue;
        };
        let m = manifest::parse(&toml);
        for (sub, kind) in [
            ("src", FileKind::LibrarySrc),
            ("tests", FileKind::TestSrc),
            ("examples", FileKind::ExampleSrc),
            ("benches", FileKind::BenchSrc),
        ] {
            let sub_dir = dir.join(sub);
            if !sub_dir.is_dir() {
                continue;
            }
            let mut files = Vec::new();
            collect_rs_files(&sub_dir, &mut files)?;
            for file in files {
                let kind = if kind == FileKind::LibrarySrc && under_bin(&file, &sub_dir) {
                    FileKind::BinSrc
                } else {
                    kind
                };
                let src = fs::read_to_string(&file)?;
                let ctx = FileCtx {
                    path: display_path(&file, root),
                    crate_name: &m.name,
                    kind,
                    features: &m.features,
                };
                findings.extend(check_file(&ctx, &src));
            }
        }
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.col).cmp(&(&b.path, b.line, b.col)));
    Ok(findings)
}

/// Recursively collects `.rs` files in sorted order, skipping `fixtures`
/// and `target` directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if name != "fixtures" && name != "target" {
                collect_rs_files(&path, out)?;
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Whether `file` sits under `<src>/bin/`.
fn under_bin(file: &Path, src_dir: &Path) -> bool {
    file.strip_prefix(src_dir)
        .ok()
        .and_then(|rel| rel.components().next())
        .is_some_and(|c| c.as_os_str() == "bin")
}

/// `file` relative to the workspace root, with `/` separators.
fn display_path(file: &Path, root: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`; falls back to `start` itself.
pub fn find_workspace_root(start: &Path) -> PathBuf {
    let mut dir = start.to_path_buf();
    loop {
        if let Ok(toml) = fs::read_to_string(dir.join("Cargo.toml")) {
            if toml.lines().any(|l| l.trim() == "[workspace]") {
                return dir;
            }
        }
        if !dir.pop() {
            return start.to_path_buf();
        }
    }
}
