//! Cross-file wire-format fact extraction and drift checking.
//!
//! CCQ serializes state in five hand-rolled formats, each with an
//! emitter and a parser that must agree key-for-key:
//!
//! * the JSONL event stream — `event_json` in `event.rs` writes keys
//!   that `decode_event` in `replay.rs` reads back;
//! * the `ccq-job v1` text spec — `JobSpec::render` writes `key = value`
//!   lines that `JobSpec::parse` reads back (same file, two halves);
//! * the metrics exposition — names registered through
//!   `inc`/`set_gauge`/`observe` in `metrics.rs` back the `# TYPE`
//!   families in the golden `metrics.txt`;
//! * the CCQRUNS v2 run state — `TAG_*` section tags in `run_state.rs`
//!   must be pushed by the writer *and* matched by the reader;
//! * the CCQPACK v1 deployable artifact — `TAG_*` section tags in
//!   `crates/infer/src/format.rs`, same writer/reader pairing rule.
//!
//! This module harvests those string-literal facts from the token
//! stream ([`crate::lexer`] keeps the unquoted literal content, escapes
//! unresolved) and reports any emitted-but-unparsed or
//! parsed-but-never-emitted key as a `wire-drift` finding carrying both
//! locations: the orphaned fact's own, and the counterpart side's
//! anchor.
//!
//! Test code (`#[cfg(test)]` regions) contributes no facts: round-trip
//! tests quote keys freely without being part of the wire format.

use crate::lexer::{lex, Tok, TokKind};
use crate::rules::{collect_waivers, test_mask, FileCtx, FileKind, Finding, Related, Waiver};
use std::collections::{BTreeMap, BTreeSet};

/// Which half of which wire format a source file holds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireRole {
    /// `event.rs`: builds JSON event lines (and is the kind authority).
    EventEmit,
    /// `replay.rs`: parses JSON event lines (and emits the probe-cache
    /// sidecar, so it contributes emit facts too).
    EventParse,
    /// `spec.rs`: both renders and parses the `ccq-job v1` text format.
    Spec,
    /// `metrics.rs`: registers metric names.
    Metrics,
    /// The golden `metrics.txt` exposition (plain text, not Rust).
    GoldenMetrics,
    /// `run_state.rs`: CCQRUNS section tags.
    RunState,
    /// `crates/infer/src/format.rs`: CCQPACK section tags.
    PackFormat,
}

/// One source fed to [`check_wire`].
#[derive(Debug, Clone, Copy)]
pub struct WireSource<'a> {
    /// Which half of which format this file holds.
    pub role: WireRole,
    /// Workspace-relative path used in diagnostics.
    pub path: &'a str,
    /// The file's content.
    pub src: &'a str,
}

/// One harvested string fact.
#[derive(Debug, Clone)]
struct Fact {
    key: String,
    path: String,
    line: u32,
    col: u32,
}

impl Fact {
    fn related(&self) -> Related {
        Related {
            path: self.path.clone(),
            line: self.line,
            col: self.col,
        }
    }
}

/// A lexed Rust wire file with its comment-free token index and test
/// mask, shared by the per-role extractors.
struct RsFile<'a> {
    path: &'a str,
    toks: Vec<Tok>,
    code: Vec<usize>,
    in_test: Vec<bool>,
}

impl<'a> RsFile<'a> {
    fn new(path: &'a str, src: &str) -> Self {
        let toks = lex(src);
        let in_test = test_mask(&toks);
        let code = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        Self {
            path,
            toks,
            code,
            in_test,
        }
    }

    /// Non-test string-literal tokens.
    fn strs(&self) -> impl Iterator<Item = &Tok> {
        self.code
            .iter()
            .filter(|&&i| !self.in_test[i] && self.toks[i].is_str())
            .map(|&i| &self.toks[i])
    }

    fn fact(&self, t: &Tok, key: &str) -> Fact {
        Fact {
            key: key.to_string(),
            path: self.path.to_string(),
            line: t.line,
            col: t.col,
        }
    }
}

/// Cross-checks every wire format for which both halves are present.
/// Findings are waivable at the orphaned fact's line with a standalone
/// `// ccq-lint: allow(wire-drift) — reason`; a wire-drift waiver that
/// suppresses nothing is reported stale from here (the per-file pass
/// defers to this one for those).
pub fn check_wire(sources: &[WireSource<'_>]) -> Vec<Finding> {
    let mut emit_json: Vec<Fact> = Vec::new();
    let mut parse_json: Vec<Fact> = Vec::new();
    let mut emit_kind: Vec<Fact> = Vec::new();
    let mut parse_kind: Vec<Fact> = Vec::new();
    let mut spec_emit: Vec<Fact> = Vec::new();
    let mut spec_parse: Vec<Fact> = Vec::new();
    let mut metric_reg: Vec<Fact> = Vec::new();
    let mut golden_fam: Vec<Fact> = Vec::new();
    let mut tag_defs: Vec<Fact> = Vec::new();
    let mut tag_uses: Vec<Fact> = Vec::new();
    let mut pack_tag_defs: Vec<Fact> = Vec::new();
    let mut pack_tag_uses: Vec<Fact> = Vec::new();
    let mut have: BTreeSet<&'static str> = BTreeSet::new();
    // (path, toks) of each Rust source, for waiver handling.
    let mut rs_waivers: Vec<(String, Vec<Waiver>)> = Vec::new();

    for s in sources {
        if s.role == WireRole::GoldenMetrics {
            have.insert("golden");
            golden_fam.extend(golden_families(s.path, s.src));
            continue;
        }
        let f = RsFile::new(s.path, s.src);
        rs_waivers.push((s.path.to_string(), wire_waivers(s.path, &f.toks)));
        match s.role {
            WireRole::EventEmit => {
                have.insert("event-emit");
                let (keys, kinds) = json_emit_facts(&f);
                emit_json.extend(keys);
                emit_kind.extend(kinds);
            }
            WireRole::EventParse => {
                have.insert("event-parse");
                // The parser side also renders the probe-cache sidecar,
                // so it contributes emit facts for its own keys.
                let (keys, _) = json_emit_facts(&f);
                emit_json.extend(keys);
                parse_json.extend(json_parse_facts(&f));
                parse_kind.extend(decode_arm_facts(&f));
            }
            WireRole::Spec => {
                have.insert("spec");
                spec_emit.extend(spec_emit_facts(&f));
                spec_parse.extend(spec_parse_facts(&f));
            }
            WireRole::Metrics => {
                have.insert("metrics");
                metric_reg.extend(metric_reg_facts(&f));
            }
            WireRole::GoldenMetrics => unreachable!(),
            WireRole::RunState => {
                have.insert("run-state");
                let (defs, uses) = tag_facts(&f);
                tag_defs.extend(defs);
                tag_uses.extend(uses);
            }
            WireRole::PackFormat => {
                have.insert("pack-format");
                let (defs, uses) = tag_facts(&f);
                pack_tag_defs.extend(defs);
                pack_tag_uses.extend(uses);
            }
        }
    }

    let mut raw = Vec::new();
    if have.contains("event-emit") && have.contains("event-parse") {
        drift(
            &emit_json,
            &parse_json,
            "JSON event key",
            "is emitted here but never parsed by decode_event",
            &mut raw,
        );
        drift(
            &parse_json,
            &emit_json,
            "JSON event key",
            "is parsed here but never emitted by event_json",
            &mut raw,
        );
        drift(
            &emit_kind,
            &parse_kind,
            "event kind",
            "is emitted here but decode_event has no matching arm",
            &mut raw,
        );
        drift(
            &parse_kind,
            &emit_kind,
            "event kind",
            "has a decode arm here but is never emitted",
            &mut raw,
        );
    }
    if have.contains("spec") {
        drift(
            &spec_emit,
            &spec_parse,
            "spec key",
            "is rendered here but never read back by JobSpec::parse",
            &mut raw,
        );
        drift(
            &spec_parse,
            &spec_emit,
            "spec key",
            "is read here but JobSpec::render never writes it",
            &mut raw,
        );
    }
    if have.contains("metrics") && have.contains("golden") {
        // One direction only: a registered name missing from the golden
        // just means that run never touched it; a golden family with no
        // registration is a rename that outlived the code.
        drift(
            &golden_fam,
            &metric_reg,
            "golden metric family",
            "has no inc/set_gauge/observe registration in metrics.rs",
            &mut raw,
        );
    }
    if have.contains("run-state") {
        tag_drift("CCQRUNS", &tag_defs, &tag_uses, &mut raw);
    }
    if have.contains("pack-format") {
        tag_drift("CCQPACK", &pack_tag_defs, &pack_tag_uses, &mut raw);
    }

    // Apply wire-drift waivers and flag the stale ones.
    let mut findings = Vec::new();
    let mut used: Vec<Vec<bool>> = rs_waivers
        .iter()
        .map(|(_, ws)| vec![false; ws.len()])
        .collect();
    for f in raw {
        let mut suppressed = false;
        for (fi, (path, ws)) in rs_waivers.iter().enumerate() {
            if *path != f.path {
                continue;
            }
            for (wi, w) in ws.iter().enumerate() {
                if w.suppresses("wire-drift", f.line) {
                    used[fi][wi] = true;
                    suppressed = true;
                }
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }
    for (fi, (path, ws)) in rs_waivers.iter().enumerate() {
        for (wi, w) in ws.iter().enumerate() {
            if !used[fi][wi] {
                findings.push(Finding {
                    path: path.clone(),
                    line: w.line,
                    col: w.col,
                    rule: "stale-waiver",
                    message: "waiver for `wire-drift` suppresses nothing; delete it".into(),
                    related: None,
                });
            }
        }
    }
    findings
        .sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    findings
}

/// The waivers of one wire file that name `wire-drift` (the per-file
/// pass validates shape and rejects mixed-rule wire waivers, so only
/// well-formed standalone ones survive to here).
fn wire_waivers(path: &str, toks: &[Tok]) -> Vec<Waiver> {
    let features = BTreeSet::new();
    let ctx = FileCtx {
        path: path.to_string(),
        crate_name: "ccq",
        kind: FileKind::LibrarySrc,
        features: &features,
    };
    let (waivers, _) = collect_waivers(&ctx, toks);
    waivers
        .into_iter()
        .filter(|w| w.rules.iter().any(|r| r == "wire-drift"))
        .collect()
}

/// Every key in `a` with no counterpart in `b` becomes one finding at
/// its first occurrence, pointing at `b`'s anchor (the counterpart
/// side's first fact) as the second location.
fn drift(a: &[Fact], b: &[Fact], what: &str, how: &str, out: &mut Vec<Finding>) {
    let b_keys: BTreeSet<&str> = b.iter().map(|f| f.key.as_str()).collect();
    let mut seen = BTreeSet::new();
    for f in a {
        if b_keys.contains(f.key.as_str()) || !seen.insert(f.key.as_str()) {
            continue;
        }
        out.push(Finding {
            path: f.path.clone(),
            line: f.line,
            col: f.col,
            rule: "wire-drift",
            message: format!("{what} \"{}\" {how}", f.key),
            related: b.first().map(Fact::related),
        });
    }
}

/// A section tag of a tag-framed format (CCQRUNS, CCQPACK) is healthy
/// only if it appears on both sides of the format: at least two
/// non-definition, non-test uses (writer push and reader match arm).
fn tag_drift(format: &str, defs: &[Fact], uses: &[Fact], out: &mut Vec<Finding>) {
    for d in defs {
        let mut sites = uses.iter().filter(|u| u.key == d.key);
        let (first, second) = (sites.next(), sites.next());
        if second.is_some() {
            continue;
        }
        out.push(Finding {
            path: d.path.clone(),
            line: d.line,
            col: d.col,
            rule: "wire-drift",
            message: format!(
                "{format} section tag {} is used on {} side(s); the writer must push it and the \
                 reader must match it",
                d.key,
                u8::from(first.is_some()),
            ),
            related: first.map(Fact::related),
        });
    }
}

/// Harvests emitted JSON keys (`\"key\":` inside string literals) and
/// event-kind values (`\"event\":\"kind\"`). The lexer keeps literal
/// content with escapes unresolved, so an emitted key appears exactly as
/// the two characters `\"` followed by the key and `\":`.
fn json_emit_facts(f: &RsFile<'_>) -> (Vec<Fact>, Vec<Fact>) {
    let mut keys = Vec::new();
    let mut kinds = Vec::new();
    for t in f.strs() {
        let bytes = t.text.as_bytes();
        let mut i = 0usize;
        while i + 1 < bytes.len() {
            if !(bytes[i] == b'\\' && bytes[i + 1] == b'"') {
                i += 1;
                continue;
            }
            let start = i + 2;
            let mut j = start;
            while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
                j += 1;
            }
            // `\"key\":` — closing escaped quote then a colon.
            if j > start
                && bytes.get(j) == Some(&b'\\')
                && bytes.get(j + 1) == Some(&b'"')
                && bytes.get(j + 2) == Some(&b':')
            {
                let key = &t.text[start..j];
                keys.push(f.fact(t, key));
                // `\"event\":\"kind\"` — the kind value rides along.
                if key == "event"
                    && bytes.get(j + 3) == Some(&b'\\')
                    && bytes.get(j + 4) == Some(&b'"')
                {
                    let vstart = j + 5;
                    let mut v = vstart;
                    while v < bytes.len() && (bytes[v].is_ascii_alphanumeric() || bytes[v] == b'_')
                    {
                        v += 1;
                    }
                    if v > vstart && bytes.get(v) == Some(&b'\\') && bytes.get(v + 1) == Some(&b'"')
                    {
                        kinds.push(f.fact(t, &t.text[vstart..v]));
                    }
                }
                i = j + 3;
            } else {
                i += 2;
            }
        }
    }
    (keys, kinds)
}

/// Harvests parsed JSON keys: the string argument of `field("…")` /
/// `*_field("…")` accessor calls.
fn json_parse_facts(f: &RsFile<'_>) -> Vec<Fact> {
    let mut out = Vec::new();
    for p in 0..f.code.len() {
        let i = f.code[p];
        if f.in_test[i] {
            continue;
        }
        let t = &f.toks[i];
        let is_accessor =
            t.kind == TokKind::Ident && (t.text == "field" || t.text.ends_with("_field"));
        if !is_accessor {
            continue;
        }
        let open = f.code.get(p + 1).map(|&j| &f.toks[j]);
        let arg = f.code.get(p + 2).map(|&j| &f.toks[j]);
        if let (Some(open), Some(arg)) = (open, arg) {
            if open.is_punct("(") && arg.is_str() {
                out.push(f.fact(arg, &arg.text));
            }
        }
    }
    out
}

/// Harvests the match arms of `fn decode_event`: string literals
/// immediately followed by `=>` inside that function's body.
fn decode_arm_facts(f: &RsFile<'_>) -> Vec<Fact> {
    let mut out = Vec::new();
    // Find `fn decode_event`, then its body by brace matching.
    let Some(p0) = (0..f.code.len().saturating_sub(1)).find(|&p| {
        f.toks[f.code[p]].is_ident("fn") && f.toks[f.code[p + 1]].is_ident("decode_event")
    }) else {
        return out;
    };
    let Some(body) = (p0..f.code.len()).find(|&p| f.toks[f.code[p]].is_punct("{")) else {
        return out;
    };
    let mut depth = 0usize;
    for p in body..f.code.len() {
        let t = &f.toks[f.code[p]];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_str() && f.code.get(p + 1).is_some_and(|&j| f.toks[j].is_punct("=>")) {
            out.push(f.fact(t, &t.text));
        }
    }
    out
}

/// Harvests rendered spec keys: string literals of the form
/// `key = …` (the `writeln!` format strings of `JobSpec::render`).
fn spec_emit_facts(f: &RsFile<'_>) -> Vec<Fact> {
    let mut out = Vec::new();
    for t in f.strs() {
        let bytes = t.text.as_bytes();
        let mut j = 0usize;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if j > 0 && t.text[j..].starts_with(" = ") {
            out.push(f.fact(t, &t.text[..j]));
        }
    }
    out
}

/// Harvests parsed spec keys: the string argument of `get("…")`.
fn spec_parse_facts(f: &RsFile<'_>) -> Vec<Fact> {
    let mut out = Vec::new();
    for p in 0..f.code.len() {
        let i = f.code[p];
        if f.in_test[i] || !f.toks[i].is_ident("get") {
            continue;
        }
        let open = f.code.get(p + 1).map(|&j| &f.toks[j]);
        let arg = f.code.get(p + 2).map(|&j| &f.toks[j]);
        if let (Some(open), Some(arg)) = (open, arg) {
            if open.is_punct("(") && arg.is_str() {
                out.push(f.fact(arg, &arg.text));
            }
        }
    }
    out
}

/// Harvests registered metric names: the first string argument of
/// `inc(` / `set_gauge(` / `observe(` when it starts with `ccq_`.
fn metric_reg_facts(f: &RsFile<'_>) -> Vec<Fact> {
    let mut out = Vec::new();
    for p in 0..f.code.len() {
        let i = f.code[p];
        if f.in_test[i] {
            continue;
        }
        let t = &f.toks[i];
        if !(t.is_ident("inc") || t.is_ident("set_gauge") || t.is_ident("observe")) {
            continue;
        }
        let open = f.code.get(p + 1).map(|&j| &f.toks[j]);
        let arg = f.code.get(p + 2).map(|&j| &f.toks[j]);
        if let (Some(open), Some(arg)) = (open, arg) {
            if open.is_punct("(") && arg.is_str() && arg.text.starts_with("ccq_") {
                out.push(f.fact(arg, &arg.text));
            }
        }
    }
    out
}

/// Harvests `# TYPE <family> <kind>` lines from the golden metrics
/// exposition.
fn golden_families(path: &str, src: &str) -> Vec<Fact> {
    let mut out = Vec::new();
    for (n, line) in src.lines().enumerate() {
        let Some(rest) = line.strip_prefix("# TYPE ") else {
            continue;
        };
        let Some(fam) = rest.split_whitespace().next() else {
            continue;
        };
        out.push(Fact {
            key: fam.to_string(),
            path: path.to_string(),
            line: (n + 1) as u32,
            col: 1,
        });
    }
    out
}

/// Harvests section-tag definitions (`const TAG_X`) and their non-test,
/// non-definition uses from a tag-framed format file (CCQRUNS run
/// state, CCQPACK artifact).
fn tag_facts(f: &RsFile<'_>) -> (Vec<Fact>, Vec<Fact>) {
    let mut defs = Vec::new();
    let mut uses = Vec::new();
    let mut def_sites: BTreeMap<(u32, u32), ()> = BTreeMap::new();
    for p in 0..f.code.len() {
        let i = f.code[p];
        if f.in_test[i] {
            continue;
        }
        let t = &f.toks[i];
        if t.is_ident("const")
            && f.code.get(p + 1).is_some_and(|&j| {
                f.toks[j].kind == TokKind::Ident && f.toks[j].text.starts_with("TAG_")
            })
        {
            let d = &f.toks[f.code[p + 1]];
            defs.push(f.fact(d, &d.text));
            def_sites.insert((d.line, d.col), ());
        }
    }
    for p in 0..f.code.len() {
        let i = f.code[p];
        if f.in_test[i] {
            continue;
        }
        let t = &f.toks[i];
        if t.kind == TokKind::Ident
            && t.text.starts_with("TAG_")
            && !def_sites.contains_key(&(t.line, t.col))
        {
            uses.push(f.fact(t, &t.text));
        }
    }
    (defs, uses)
}
