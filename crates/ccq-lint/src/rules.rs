//! The rule engine: scopes, patterns, waivers, and diagnostics.
//!
//! Every rule works on the token stream produced by [`crate::lexer`], so
//! nothing fires inside comments or string/char literals. Findings are
//! reported as `file:line:col: rule-name: message` and any finding makes
//! the lint exit non-zero.
//!
//! # Waivers
//!
//! A violation that is *intentional* carries an inline waiver:
//!
//! ```text
//! // ccq-lint: allow(rule-name) — reason
//! ```
//!
//! The reason is mandatory. A trailing waiver covers its own line; a
//! standalone waiver comment covers the next line of code. Binary,
//! example, test, and bench files may instead waive a rule for the whole
//! file with `ccq-lint: allow-file(rule-name) — reason`; library code
//! must waive line by line.
//!
//! A waiver that suppresses nothing is itself a finding
//! (`stale-waiver`), so waivers cannot outlive the violation they were
//! written for.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;
use std::fmt;

/// Every waivable rule the engine knows, in reporting order.
/// `waiver` and `stale-waiver` diagnostics are never waivable and are
/// deliberately absent.
pub const RULE_NAMES: [&str; 8] = [
    "determinism",
    "panic-surface",
    "no-unsafe",
    "float-eq",
    "feature-hygiene",
    "durability",
    "concurrency",
    "wire-drift",
];

/// Crates whose library code must stay deterministic and panic-free:
/// these sit under the descent loop, the autosave path, or the golden
/// digests, where a stray `unwrap()` or `HashMap` breaks the
/// reproducibility guarantees of PRs 1–3.
pub const PROTECTED_CRATES: [&str; 6] = [
    "ccq",
    "ccq-tensor",
    "ccq-nn",
    "ccq-quant",
    "ccq-serve",
    "ccq-infer",
];

/// Crates whose library hot paths must stay lock-free: descent state is
/// partitioned per rayon chunk, never shared behind a lock. The serve
/// daemon (supervisor state) is deliberately not on this list.
pub const LOCK_FREE_CRATES: [&str; 5] = ["ccq", "ccq-tensor", "ccq-nn", "ccq-quant", "ccq-infer"];

/// The only modules allowed to construct thread pools or touch raw
/// threading primitives; everything else goes through them.
pub const SANCTIONED_POOL_PATHS: [&str; 1] = ["crates/tensor/src/par.rs"];

/// Files holding crash-durable state: checkpoint/run-state writers and
/// the serve job spool. The `durability` rule family applies here.
pub const DURABILITY_PATHS: [&str; 3] = [
    "crates/core/src/run_state.rs",
    "crates/nn/src/checkpoint.rs",
    "crates/infer/src/format.rs",
];

/// The Rust halves of the wire formats cross-checked by
/// [`crate::extract::check_wire`]. `wire-drift` waivers are only valid
/// in these files (plus the golden metrics text, which cannot carry
/// Rust comments).
pub const WIRE_RS_PATHS: [&str; 6] = [
    "crates/core/src/event.rs",
    "crates/core/src/replay.rs",
    "crates/serve/src/spec.rs",
    "crates/core/src/metrics.rs",
    "crates/core/src/run_state.rs",
    "crates/infer/src/format.rs",
];

/// Static metadata for `--list-rules` / `--explain` and the DESIGN.md
/// rule table.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// The rule name as written in diagnostics and waivers.
    pub name: &'static str,
    /// Where the rule is in force.
    pub scope: &'static str,
    /// Why the rule exists.
    pub rationale: &'static str,
    /// When (if ever) a waiver is acceptable.
    pub waiver_policy: &'static str,
}

/// One entry per diagnostic the engine can emit, including the two
/// meta-diagnostics (`waiver`, `stale-waiver`) that police the waivers
/// themselves.
pub const RULES: [RuleInfo; 10] = [
    RuleInfo {
        name: "determinism",
        scope: "library code of the protected crates (ccq, ccq-tensor, ccq-nn, ccq-quant, ccq-serve, ccq-infer), outside tests",
        rationale: "HashMap/HashSet iteration order, Instant::now, and SystemTime vary run-to-run and break bit-identical descents, golden digests, and replay==live",
        waiver_policy: "line waiver with the invariant that restores determinism (e.g. keys drained through a sorted view)",
    },
    RuleInfo {
        name: "panic-surface",
        scope: "library code of the protected crates, plus examples/ and ccq-bench bins, outside tests",
        rationale: "a stray unwrap in the descent or autosave path turns a recoverable I/O error into a lost run; library code returns typed errors",
        waiver_policy: "line waiver stating why the invariant holds; demo/bench files may use a file-level waiver when aborting is the intended UX",
    },
    RuleInfo {
        name: "no-unsafe",
        scope: "everywhere, including tests",
        rationale: "the whole stack is safe Rust; one unsafe block would invalidate that blanket claim",
        waiver_policy: "line waiver; expected never to be used",
    },
    RuleInfo {
        name: "float-eq",
        scope: "library code of all crates, outside tests",
        rationale: "== / != against a float literal is almost always a tolerance bug in quantization math",
        waiver_policy: "line waiver naming the exact sentinel value being compared",
    },
    RuleInfo {
        name: "feature-hygiene",
        scope: "everywhere, including tests",
        rationale: "cfg(feature = …) strings not declared in the crate's Cargo.toml silently compile to dead code",
        waiver_policy: "line waiver, normally only while a feature gate lands ahead of its feature",
    },
    RuleInfo {
        name: "durability",
        scope: "run_state.rs, checkpoint.rs, infer/src/format.rs, and crates/serve/src/** (the crash-durable state writers), outside tests",
        rationale: "a rename not preceded by fsync, or a File::create on the final path, loses acknowledged state on power cut; the only sanctioned pattern is tmp + fsync + rename",
        waiver_policy: "line waiver explaining why the data is already durable (e.g. renaming a file fsynced by its writer)",
    },
    RuleInfo {
        name: "concurrency",
        scope: "library code outside crates/tensor/src/par.rs, outside tests; the Mutex/RwLock ban covers the lock-free crates (ccq, ccq-tensor, ccq-nn, ccq-quant, ccq-infer)",
        rationale: "ad-hoc pools and raw std::thread::spawn bypass the deterministic rayon configuration; locks in descent hot paths serialize what chunking already partitions",
        waiver_policy: "line waiver; the shared single-thread pool in ccq-nn carries the canonical one",
    },
    RuleInfo {
        name: "wire-drift",
        scope: "cross-file: event.rs vs replay.rs JSON keys and event kinds, spec.rs render vs parse, golden metrics.txt vs metrics.rs registrations, CCQRUNS tags in run_state.rs, CCQPACK tags in infer/src/format.rs",
        rationale: "a serialized key emitted but never parsed (or vice versa) ships silent data loss that golden re-blessing can hide",
        waiver_policy: "line waiver in the wire file, standing alone (not mixed with other rules); used for deliberate forward-compat keys",
    },
    RuleInfo {
        name: "waiver",
        scope: "every ccq-lint waiver comment",
        rationale: "a waiver without a reason, naming an unknown rule, or file-level in library code is a policy violation in itself",
        waiver_policy: "never waivable; fix the waiver",
    },
    RuleInfo {
        name: "stale-waiver",
        scope: "every ccq-lint waiver comment",
        rationale: "a waiver that suppresses nothing is dead policy: it documents a violation that no longer exists and will silently hide a future one",
        waiver_policy: "never waivable; delete the waiver",
    },
];

/// Looks up the metadata for one rule name.
pub fn rule_info(name: &str) -> Option<&'static RuleInfo> {
    RULES.iter().find(|r| r.name == name)
}

/// How a file participates in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` excluding `src/bin` — the library proper.
    LibrarySrc,
    /// `src/bin/**` — binary entry points.
    BinSrc,
    /// `tests/**` — integration tests.
    TestSrc,
    /// `examples/**`.
    ExampleSrc,
    /// `benches/**`.
    BenchSrc,
}

/// Everything the rules need to know about the file being checked.
#[derive(Debug, Clone)]
pub struct FileCtx<'a> {
    /// Workspace-relative path used in diagnostics.
    pub path: String,
    /// The owning crate's `package.name`.
    pub crate_name: &'a str,
    /// Where the file lives in the crate.
    pub kind: FileKind,
    /// Features the owning crate declares (see [`crate::manifest`]).
    pub features: &'a BTreeSet<String>,
}

/// The other half of a cross-file diagnostic: where the counterpart
/// format lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Related {
    /// Workspace-relative path of the counterpart.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The rule that fired: one of [`RULE_NAMES`], or `waiver` /
    /// `stale-waiver` for waiver-policy diagnostics (which are
    /// themselves never waivable).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// For cross-file rules, the counterpart location.
    pub related: Option<Related>,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )?;
        if let Some(r) = &self.related {
            write!(f, " (counterpart: {}:{}:{})", r.path, r.line, r.col)?;
        }
        Ok(())
    }
}

/// What a waiver covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Covers {
    /// One line of code.
    Line(u32),
    /// The whole file (`allow-file`, non-library files only).
    File,
}

/// A parsed `// ccq-lint: allow(...)` / `allow-file(...)` directive.
#[derive(Debug)]
pub(crate) struct Waiver {
    pub(crate) rules: Vec<String>,
    pub(crate) covers: Covers,
    /// Where the directive itself sits (for stale-waiver reporting).
    pub(crate) line: u32,
    pub(crate) col: u32,
}

impl Waiver {
    pub(crate) fn suppresses(&self, rule: &str, line: u32) -> bool {
        let here = match self.covers {
            Covers::Line(l) => l == line,
            Covers::File => true,
        };
        here && self.rules.iter().any(|r| r == rule)
    }
}

/// Checks one source file against every rule in scope for it.
pub fn check_file(ctx: &FileCtx<'_>, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let in_test = test_mask(&toks);
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let (waivers, mut findings) = collect_waivers(ctx, &toks);

    let mut raw = Vec::new();
    for (p, &i) in code.iter().enumerate() {
        let t = &toks[i];
        let next = code.get(p + 1).map(|&j| &toks[j]);
        let next2 = code.get(p + 2).map(|&j| &toks[j]);
        let prev = p.checked_sub(1).map(|q| &toks[code[q]]);
        scan_token(ctx, t, prev, next, next2, in_test[i], &mut raw);
    }
    durability_pass(ctx, &toks, &code, &in_test, &mut raw);

    // Keep only findings no waiver covers, and remember which waivers
    // earned their keep.
    let mut used = vec![false; waivers.len()];
    for f in raw {
        let mut suppressed = false;
        for (wi, w) in waivers.iter().enumerate() {
            if w.suppresses(f.rule, f.line) {
                used[wi] = true;
                suppressed = true;
            }
        }
        if !suppressed {
            findings.push(f);
        }
    }
    // A waiver that suppressed nothing is dead policy. `wire-drift`
    // waivers are judged by the cross-file pass instead (see
    // `crate::extract`), which alone knows whether they suppress.
    for (wi, w) in waivers.iter().enumerate() {
        if used[wi] || w.rules.iter().any(|r| r == "wire-drift") {
            continue;
        }
        findings.push(Finding {
            path: ctx.path.clone(),
            line: w.line,
            col: w.col,
            rule: "stale-waiver",
            message: format!(
                "waiver for {} suppresses nothing; delete it",
                w.rules
                    .iter()
                    .map(|r| format!("`{r}`"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
            related: None,
        });
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Whether the `durability` family polices this path.
fn durability_in_scope(path: &str) -> bool {
    DURABILITY_PATHS.contains(&path) || path.starts_with("crates/serve/src/")
}

/// Whether `rule` is in force at this point of this file.
fn rule_applies(rule: &str, ctx: &FileCtx<'_>, in_test: bool) -> bool {
    match rule {
        // `unsafe` and phantom features are banned even in tests.
        "no-unsafe" | "feature-hygiene" => true,
        // Test code may unwrap, probe wall clocks, and hash freely.
        "determinism" => {
            ctx.kind == FileKind::LibrarySrc
                && PROTECTED_CRATES.contains(&ctx.crate_name)
                && !in_test
        }
        // Examples and bench harnesses face users too: their panics are
        // either waived as intended UX or converted to typed errors.
        "panic-surface" => {
            !in_test
                && ((ctx.kind == FileKind::LibrarySrc
                    && PROTECTED_CRATES.contains(&ctx.crate_name))
                    || ctx.kind == FileKind::ExampleSrc
                    || (ctx.kind == FileKind::BinSrc && ctx.crate_name == "ccq-bench"))
        }
        "float-eq" => ctx.kind == FileKind::LibrarySrc && !in_test,
        "durability" => {
            durability_in_scope(&ctx.path)
                && matches!(ctx.kind, FileKind::LibrarySrc | FileKind::BinSrc)
                && !in_test
        }
        "concurrency" => {
            ctx.kind == FileKind::LibrarySrc
                && !in_test
                && !SANCTIONED_POOL_PATHS.contains(&ctx.path.as_str())
        }
        _ => false,
    }
}

/// Runs every windowed pattern against one token (with a two-token
/// lookahead and one-token lookbehind).
fn scan_token(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    next2: Option<&Tok>,
    in_test: bool,
    out: &mut Vec<Finding>,
) {
    let mut emit = |rule: &'static str, message: String| {
        if rule_applies(rule, ctx, in_test) {
            out.push(Finding {
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                rule,
                message,
                related: None,
            });
        }
    };

    match t.kind {
        TokKind::Ident => match t.text.as_str() {
            "unsafe" => emit(
                "no-unsafe",
                "`unsafe` is forbidden workspace-wide; the whole stack is safe Rust".into(),
            ),
            "HashMap" | "HashSet" => emit(
                "determinism",
                format!(
                    "`{}` iteration order varies run-to-run; use BTreeMap/BTreeSet or a Vec",
                    t.text
                ),
            ),
            "SystemTime" => emit(
                "determinism",
                "wall-clock reads in library code break bit-reproducible descents".into(),
            ),
            "Instant" if next.is_some_and(|n| n.is_punct("::")) && next2.is_some_and(|n| n.is_ident("now")) => {
                emit(
                    "determinism",
                    "`Instant::now()` in library code breaks bit-reproducible descents".into(),
                )
            }
            "unwrap" | "expect"
                if prev.is_some_and(|p| p.is_punct(".")) && next.is_some_and(|n| n.is_punct("(")) =>
            {
                emit(
                    "panic-surface",
                    format!(
                        "`.{}()` in library code; return a typed error (CcqError/NnError/...) or waive with the invariant",
                        t.text
                    ),
                )
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next.is_some_and(|n| n.is_punct("!")) =>
            {
                emit(
                    "panic-surface",
                    format!("`{}!` in library code; return a typed error instead", t.text),
                )
            }
            "feature"
                if next.is_some_and(|n| n.is_punct("="))
                    && next2.is_some_and(|n| n.kind == TokKind::Str) =>
            {
                let name = &next2.map(|n| n.text.clone()).unwrap_or_default();
                if !ctx.features.contains(name) {
                    emit(
                        "feature-hygiene",
                        format!(
                            "feature \"{name}\" is not declared in {}'s Cargo.toml [features]",
                            ctx.crate_name
                        ),
                    )
                }
            }
            "ThreadPoolBuilder" => emit(
                "concurrency",
                "thread-pool construction outside crates/tensor/src/par.rs; route work through \
                 ccq_tensor::par or the shared single-thread pool"
                    .into(),
            ),
            "thread"
                if next.is_some_and(|n| n.is_punct("::"))
                    && next2.is_some_and(|n| n.is_ident("spawn")) =>
            {
                emit(
                    "concurrency",
                    "`std::thread::spawn` bypasses the sanctioned rayon pool and its deterministic \
                     chunking; use ccq_tensor::par (scoped threads via `thread::scope` are fine)"
                        .into(),
                )
            }
            "Mutex" | "RwLock" if LOCK_FREE_CRATES.contains(&ctx.crate_name) => emit(
                "concurrency",
                format!(
                    "`{}` in hot-path crate `{}`; descent state is partitioned per chunk and must \
                     stay lock-free",
                    t.text, ctx.crate_name
                ),
            ),
            _ => {}
        },
        TokKind::Punct if t.text == "==" || t.text == "!=" => {
            let lit_next = next.is_some_and(Tok::is_float)
                || (next.is_some_and(|n| n.is_punct("-")) && next2.is_some_and(Tok::is_float));
            if prev.is_some_and(Tok::is_float) || lit_next {
                emit(
                    "float-eq",
                    format!(
                        "float-literal comparison with `{}`; use a tolerance, or waive if the value is an exact sentinel",
                        t.text
                    ),
                )
            }
        }
        _ => {}
    }
}

/// The durability family needs more context than a token window: a
/// `rename` must see a `sync_all` earlier in the *same function*, and a
/// `File::create` must target a tmp sibling, never the final path.
fn durability_pass(
    ctx: &FileCtx<'_>,
    toks: &[Tok],
    code: &[usize],
    in_test: &[bool],
    out: &mut Vec<Finding>,
) {
    if !rule_applies("durability", ctx, false) {
        return;
    }
    let scopes = fn_scope_ids(toks, code);
    for p in 0..code.len() {
        let i = code[p];
        if in_test[i] {
            continue;
        }
        let t = &toks[i];
        let next_open = code.get(p + 1).is_some_and(|&j| toks[j].is_punct("("));
        if t.is_ident("rename") && next_open {
            let synced = (0..p).any(|q| {
                scopes[q] == scopes[p] && !in_test[code[q]] && toks[code[q]].is_ident("sync_all")
            });
            if !synced {
                out.push(Finding {
                    path: ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "durability",
                    message: "`rename` with no preceding `sync_all` in the same function; \
                              durable writes go tmp + fsync + rename"
                        .into(),
                    related: None,
                });
            }
        }
        if t.is_ident("create")
            && p >= 2
            && toks[code[p - 1]].is_punct("::")
            && toks[code[p - 2]].is_ident("File")
            && next_open
        {
            // Walk the argument list looking for a tmp-named binding.
            let mut depth = 0usize;
            let mut tmp_arg = false;
            for &j in &code[p + 1..] {
                let a = &toks[j];
                if a.is_punct("(") {
                    depth += 1;
                } else if a.is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                } else if a.kind == TokKind::Ident && a.text.to_ascii_lowercase().contains("tmp") {
                    tmp_arg = true;
                }
            }
            if !tmp_arg {
                out.push(Finding {
                    path: ctx.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule: "durability",
                    message: "`File::create` on a final path; create a tmp sibling, fsync it, \
                              then rename into place"
                        .into(),
                    related: None,
                });
            }
        }
    }
}

/// For each code position, an id for the innermost enclosing `fn` item
/// (the code index of its `fn` keyword), or `usize::MAX` at top level.
/// Closures do not open a new scope; nested `fn` items do.
fn fn_scope_ids(toks: &[Tok], code: &[usize]) -> Vec<usize> {
    let mut ids = vec![usize::MAX; code.len()];
    let mut depth = 0usize;
    let mut pending: Option<usize> = None;
    // (fn id, brace depth of its body)
    let mut stack: Vec<(usize, usize)> = Vec::new();
    for p in 0..code.len() {
        let t = &toks[code[p]];
        if t.is_punct("{") {
            depth += 1;
            if let Some(fp) = pending.take() {
                stack.push((fp, depth));
            }
        } else if t.is_punct("}") {
            if stack.last().is_some_and(|&(_, d)| d == depth) {
                stack.pop();
            }
            depth = depth.saturating_sub(1);
        } else if t.is_ident("fn") {
            pending = Some(p);
        } else if t.is_punct(";") && depth == stack.last().map_or(0, |&(_, d)| d) {
            // `fn name(...);` — a declaration without a body.
            pending = None;
        }
        ids[p] = stack.last().map_or(usize::MAX, |&(id, _)| id);
    }
    ids
}

/// Extracts waiver directives from comment tokens. Returns the parsed
/// waivers plus diagnostics for malformed ones (missing reason, unknown
/// rule, file-level in library code, wire-drift mixed with other
/// rules); those diagnostics are not themselves waivable.
pub(crate) fn collect_waivers(ctx: &FileCtx<'_>, toks: &[Tok]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        let text = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = text.strip_prefix("ccq-lint:") else {
            continue;
        };
        let mut bad = |message: String| {
            findings.push(Finding {
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                rule: "waiver",
                message,
                related: None,
            });
        };
        let rest = rest.trim_start();
        let (file_wide, rest) = match rest.strip_prefix("allow-file(") {
            Some(r) => (true, r),
            None => match rest.strip_prefix("allow(") {
                Some(r) => (false, r),
                None => {
                    bad("malformed waiver; expected `ccq-lint: allow(rule-name) — reason` or `allow-file(...)`".into());
                    continue;
                }
            },
        };
        let Some((inside, reason)) = rest.split_once(')') else {
            bad("malformed waiver; expected `ccq-lint: allow(rule-name) — reason`".into());
            continue;
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut ok = !rules.is_empty();
        for r in &rules {
            if !RULE_NAMES.contains(&r.as_str()) {
                bad(format!("waiver names unknown rule `{r}`"));
                ok = false;
            }
        }
        if rules.iter().any(|r| r == "wire-drift") {
            if rules.len() > 1 {
                bad("wire-drift waivers must stand alone, not mixed with other rules".into());
                ok = false;
            }
            if !WIRE_RS_PATHS.contains(&ctx.path.as_str()) {
                bad(format!(
                    "wire-drift waivers are only valid in the wire-format files ({})",
                    WIRE_RS_PATHS.join(", ")
                ));
                ok = false;
            }
        }
        if file_wide && ctx.kind == FileKind::LibrarySrc {
            bad("file-level waivers are not allowed in library code; waive specific lines".into());
            ok = false;
        }
        let reason = reason.trim_matches([' ', '\t', '-', '—', '–', ':']);
        if reason.is_empty() {
            bad("waiver requires a non-empty reason after the rule list".into());
            ok = false;
        }
        if !ok {
            continue;
        }
        let covers = if file_wide {
            Covers::File
        } else {
            // A standalone comment covers the next code line; a trailing
            // comment covers its own line.
            let standalone = !toks[..i]
                .iter()
                .rev()
                .take_while(|p| p.line == t.line)
                .any(|p| p.kind != TokKind::Comment);
            if standalone {
                match toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment) {
                    Some(n) => Covers::Line(n.line),
                    None => continue,
                }
            } else {
                Covers::Line(t.line)
            }
        };
        waivers.push(Waiver {
            rules,
            covers,
            line: t.line,
            col: t.col,
        });
    }
    (waivers, findings)
}

/// Marks every token that belongs to test-only code: the bodies of
/// `#[cfg(test)]` items and `#[test]` functions (an inner
/// `#![cfg(test)]` marks the whole file).
pub(crate) fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let mut p = 0usize;
    while p < code.len() {
        if !toks[code[p]].is_punct("#") {
            p += 1;
            continue;
        }
        let mut q = p + 1;
        let inner = code.get(q).is_some_and(|&i| toks[i].is_punct("!"));
        if inner {
            q += 1;
        }
        if !code.get(q).is_some_and(|&i| toks[i].is_punct("[")) {
            p += 1;
            continue;
        }
        let (attr, after) = attr_tokens(toks, &code, q);
        if attr != ["cfg", "(", "test", ")"] && attr != ["test"] {
            p = after;
            continue;
        }
        if inner {
            mask.iter_mut().for_each(|m| *m = true);
            return mask;
        }
        // Skip any further attributes on the same item.
        let mut m = after;
        while code.get(m).is_some_and(|&i| toks[i].is_punct("#"))
            && code.get(m + 1).is_some_and(|&i| toks[i].is_punct("["))
        {
            m = attr_tokens(toks, &code, m + 1).1;
        }
        // The item extends to its closing brace, or to `;` for
        // brace-less items (`#[cfg(test)] use …;`).
        let end = item_end(toks, &code, m);
        for &i in &code[p..end.min(code.len())] {
            mask[i] = true;
        }
        p = end;
    }
    mask
}

/// With `code[open]` on a `[`, returns the attribute's identifier/punct
/// text (exclusive of the outer brackets) and the code index just past
/// the matching `]`.
fn attr_tokens<'t>(toks: &'t [Tok], code: &[usize], open: usize) -> (Vec<&'t str>, usize) {
    let mut depth = 0usize;
    let mut out = Vec::new();
    let mut q = open;
    while q < code.len() {
        let t = &toks[code[q]];
        if t.is_punct("[") {
            depth += 1;
            if depth > 1 {
                out.push("[");
            }
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (out, q + 1);
            }
            out.push("]");
        } else {
            out.push(t.text.as_str());
        }
        q += 1;
    }
    (out, q)
}

/// Finds the code index one past the end of the item starting at
/// `code[start]`: past the matching `}` of its first brace, or past a
/// top-level `;`, whichever comes first.
fn item_end(toks: &[Tok], code: &[usize], start: usize) -> usize {
    let mut depth = 0usize;
    let mut q = start;
    while q < code.len() {
        let t = &toks[code[q]];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return q + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return q + 1;
        }
        q += 1;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(features: &BTreeSet<String>) -> FileCtx<'_> {
        FileCtx {
            path: "crates/core/src/x.rs".into(),
            crate_name: "ccq",
            kind: FileKind::LibrarySrc,
            features,
        }
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\n";
        assert!(check_file(&ctx, src).is_empty());
        let src = "fn a() { x.unwrap(); }";
        assert_eq!(check_file(&ctx, src).len(), 1);
    }

    #[test]
    fn unprotected_crate_may_unwrap_but_not_unsafe() {
        let feats = BTreeSet::new();
        let mut ctx = lib_ctx(&feats);
        ctx.crate_name = "ccq-data";
        assert!(check_file(&ctx, "fn a() { x.unwrap(); }").is_empty());
        let f = check_file(&ctx, "unsafe fn a() {}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unsafe");
    }

    #[test]
    fn waiver_scope_is_one_line() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let src = "\
// ccq-lint: allow(panic-surface) — invariant holds by construction
fn a() { x.unwrap(); }
fn b() { y.unwrap(); }
";
        let f = check_file(&ctx, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn display_format_is_grep_friendly() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let f = &check_file(&ctx, "fn a() { panic!(\"x\") }")[0];
        assert_eq!(
            f.to_string(),
            "crates/core/src/x.rs:1:10: panic-surface: `panic!` in library code; return a typed error instead"
        );
    }

    #[test]
    fn stale_waiver_is_reported_at_the_waiver() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let src = "\
// ccq-lint: allow(panic-surface) — nothing panics here any more
fn a() { let x = 1; }
";
        let f = check_file(&ctx, src);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "stale-waiver");
        assert_eq!(f[0].line, 1);
        assert!(f[0].message.contains("`panic-surface`"), "{}", f[0].message);
    }

    #[test]
    fn multi_rule_waiver_is_live_if_any_rule_suppresses() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let src = "\
// ccq-lint: allow(panic-surface, determinism) — unwrap is checked above
fn a() { x.unwrap(); }
";
        assert!(check_file(&ctx, src).is_empty());
    }

    #[test]
    fn file_level_waiver_is_rejected_in_library_code() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let src = "// ccq-lint: allow-file(panic-surface) — blanket\nfn a() { x.unwrap(); }\n";
        let f = check_file(&ctx, src);
        assert!(f.iter().any(|x| x.rule == "waiver"), "{f:#?}");
        assert!(f.iter().any(|x| x.rule == "panic-surface"), "{f:#?}");
    }

    #[test]
    fn file_level_waiver_covers_a_bin_file() {
        let feats = BTreeSet::new();
        let mut ctx = lib_ctx(&feats);
        ctx.crate_name = "ccq-bench";
        ctx.kind = FileKind::BinSrc;
        ctx.path = "crates/bench/src/bin/x.rs".into();
        let src = "\
// ccq-lint: allow-file(panic-surface) — bench harness aborts on setup failure
fn a() { x.unwrap(); }
fn b() { y.expect(\"setup\"); }
";
        assert!(check_file(&ctx, src).is_empty());
    }

    #[test]
    fn durability_rename_needs_sync_all_in_same_fn() {
        let feats = BTreeSet::new();
        let mut ctx = lib_ctx(&feats);
        ctx.crate_name = "ccq-serve";
        ctx.path = "crates/serve/src/spool.rs".into();
        let fire = "fn mv() { fs::rename(&a, &b); }";
        let f = check_file(&ctx, fire);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "durability");
        let clean = "fn mv() { f.sync_all(); fs::rename(&tmp, &b); }";
        assert!(check_file(&ctx, clean).is_empty());
        // sync_all in a *different* function does not count.
        let other = "fn a() { f.sync_all(); }\nfn mv() { fs::rename(&a, &b); }";
        assert_eq!(check_file(&ctx, other).len(), 1);
    }

    #[test]
    fn durability_file_create_must_target_tmp() {
        let feats = BTreeSet::new();
        let mut ctx = lib_ctx(&feats);
        ctx.path = "crates/core/src/run_state.rs".into();
        let fire = "fn w() { let f = fs::File::create(path); }";
        let f = check_file(&ctx, fire);
        assert_eq!(f.len(), 1, "{f:#?}");
        assert_eq!(f[0].rule, "durability");
        assert!(check_file(&ctx, "fn w() { let f = fs::File::create(&tmp); }").is_empty());
        // Out of the durability scope, File::create is fine.
        let mut free = ctx.clone();
        free.path = "crates/core/src/engine.rs".into();
        assert!(check_file(&free, fire).is_empty());
    }

    #[test]
    fn concurrency_bans_pools_locks_and_raw_spawn() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let f = check_file(&ctx, "fn a() { rayon::ThreadPoolBuilder::new(); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "concurrency");
        let f = check_file(&ctx, "fn a() { std::thread::spawn(|| {}); }");
        assert_eq!(f.len(), 1, "{f:#?}");
        let f = check_file(&ctx, "use std::sync::Mutex;");
        assert_eq!(f.len(), 1);
        // Scoped threads and rayon scope spawns stay legal.
        assert!(check_file(
            &ctx,
            "fn a() { std::thread::scope(|s| { s.spawn(|| {}); }); }"
        )
        .is_empty());
        // The serve daemon may hold its supervisor state behind a Mutex.
        let mut serve = ctx.clone();
        serve.crate_name = "ccq-serve";
        serve.path = "crates/serve/src/daemon.rs".into();
        assert!(check_file(&serve, "use std::sync::Mutex;").is_empty());
        // The sanctioned pool module is exempt wholesale.
        let mut par = ctx.clone();
        par.crate_name = "ccq-tensor";
        par.path = "crates/tensor/src/par.rs".into();
        assert!(check_file(&par, "fn a() { rayon::ThreadPoolBuilder::new(); }").is_empty());
    }

    #[test]
    fn wire_drift_waivers_must_stand_alone_in_wire_files() {
        let feats = BTreeSet::new();
        let mut ctx = lib_ctx(&feats);
        ctx.path = "crates/core/src/event.rs".into();
        let mixed = "// ccq-lint: allow(wire-drift, panic-surface) — both\nfn a() {}\n";
        let f = check_file(&ctx, mixed);
        assert!(f.iter().any(|x| x.rule == "waiver"), "{f:#?}");
        // Standing alone in a wire file: parsed, and never reported
        // stale by the per-file pass (the cross-file pass owns it).
        let alone = "// ccq-lint: allow(wire-drift) — forward-compat key\nfn a() {}\n";
        assert!(check_file(&ctx, alone).is_empty());
        // Outside the wire files it is malformed.
        ctx.path = "crates/core/src/engine.rs".into();
        let f = check_file(&ctx, alone);
        assert!(f.iter().any(|x| x.rule == "waiver"), "{f:#?}");
    }

    #[test]
    fn fn_scopes_track_nesting_and_declarations() {
        let toks = lex("fn outer() { fn inner() { a(); } b(); }\nfn decl();\nfn last() { c(); }");
        let code: Vec<usize> = (0..toks.len())
            .filter(|&i| toks[i].kind != TokKind::Comment)
            .collect();
        let ids = fn_scope_ids(&toks, &code);
        let at = |name: &str| {
            (0..code.len())
                .find(|&p| toks[code[p]].is_ident(name))
                .unwrap()
        };
        assert_ne!(ids[at("a")], ids[at("b")], "inner fn is its own scope");
        assert_ne!(ids[at("b")], ids[at("c")]);
        assert_ne!(ids[at("b")], usize::MAX);
    }
}
