//! The rule engine: scopes, patterns, waivers, and diagnostics.
//!
//! Every rule works on the token stream produced by [`crate::lexer`], so
//! nothing fires inside comments or string/char literals. Findings are
//! reported as `file:line:col: rule-name: message` and any finding makes
//! the lint exit non-zero.
//!
//! # Waivers
//!
//! A violation that is *intentional* carries an inline waiver:
//!
//! ```text
//! // ccq-lint: allow(rule-name) — reason
//! ```
//!
//! The reason is mandatory. A trailing waiver covers its own line; a
//! standalone waiver comment covers the next line of code.

use crate::lexer::{lex, Tok, TokKind};
use std::collections::BTreeSet;
use std::fmt;

/// Every rule the engine knows, in reporting order.
pub const RULE_NAMES: [&str; 5] = [
    "determinism",
    "panic-surface",
    "no-unsafe",
    "float-eq",
    "feature-hygiene",
];

/// Crates whose library code must stay deterministic and panic-free:
/// these sit under the descent loop, the autosave path, or the golden
/// digests, where a stray `unwrap()` or `HashMap` breaks the
/// reproducibility guarantees of PRs 1–3.
pub const PROTECTED_CRATES: [&str; 5] = ["ccq", "ccq-tensor", "ccq-nn", "ccq-quant", "ccq-serve"];

/// How a file participates in its crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileKind {
    /// `src/**` excluding `src/bin` — the library proper.
    LibrarySrc,
    /// `src/bin/**` — binary entry points.
    BinSrc,
    /// `tests/**` — integration tests.
    TestSrc,
    /// `examples/**`.
    ExampleSrc,
    /// `benches/**`.
    BenchSrc,
}

/// Everything the rules need to know about the file being checked.
#[derive(Debug, Clone)]
pub struct FileCtx<'a> {
    /// Workspace-relative path used in diagnostics.
    pub path: String,
    /// The owning crate's `package.name`.
    pub crate_name: &'a str,
    /// Where the file lives in the crate.
    pub kind: FileKind,
    /// Features the owning crate declares (see [`crate::manifest`]).
    pub features: &'a BTreeSet<String>,
}

/// One diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// The rule that fired (one of [`RULE_NAMES`], or `waiver` for a
    /// malformed waiver — which is itself never waivable).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: {}: {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// A parsed `// ccq-lint: allow(...)` directive.
struct Waiver {
    rules: Vec<String>,
    /// The line of code this waiver covers.
    covers: u32,
}

/// Checks one source file against every rule in scope for it.
pub fn check_file(ctx: &FileCtx<'_>, src: &str) -> Vec<Finding> {
    let toks = lex(src);
    let in_test = test_mask(&toks);
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let (waivers, mut findings) = collect_waivers(ctx, &toks);

    let mut raw = Vec::new();
    for (p, &i) in code.iter().enumerate() {
        let t = &toks[i];
        let next = code.get(p + 1).map(|&j| &toks[j]);
        let next2 = code.get(p + 2).map(|&j| &toks[j]);
        let prev = p.checked_sub(1).map(|q| &toks[code[q]]);
        scan_token(ctx, t, prev, next, next2, in_test[i], &mut raw);
    }
    // Keep only findings no waiver covers.
    for f in raw {
        let waived = waivers
            .iter()
            .any(|w| w.covers == f.line && w.rules.iter().any(|r| r == f.rule));
        if !waived {
            findings.push(f);
        }
    }
    findings.sort_by_key(|f| (f.line, f.col, f.rule));
    findings
}

/// Whether `rule` is in force at this point of this file.
fn rule_applies(rule: &str, ctx: &FileCtx<'_>, in_test: bool) -> bool {
    match rule {
        // `unsafe` and phantom features are banned even in tests.
        "no-unsafe" | "feature-hygiene" => true,
        // Test code may unwrap, probe wall clocks, and hash freely.
        "determinism" | "panic-surface" => {
            ctx.kind == FileKind::LibrarySrc
                && PROTECTED_CRATES.contains(&ctx.crate_name)
                && !in_test
        }
        "float-eq" => ctx.kind == FileKind::LibrarySrc && !in_test,
        _ => false,
    }
}

/// Runs every pattern against one token (with a two-token lookahead and
/// one-token lookbehind).
fn scan_token(
    ctx: &FileCtx<'_>,
    t: &Tok,
    prev: Option<&Tok>,
    next: Option<&Tok>,
    next2: Option<&Tok>,
    in_test: bool,
    out: &mut Vec<Finding>,
) {
    let mut emit = |rule: &'static str, message: String| {
        if rule_applies(rule, ctx, in_test) {
            out.push(Finding {
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                rule,
                message,
            });
        }
    };

    match t.kind {
        TokKind::Ident => match t.text.as_str() {
            "unsafe" => emit(
                "no-unsafe",
                "`unsafe` is forbidden workspace-wide; the whole stack is safe Rust".into(),
            ),
            "HashMap" | "HashSet" => emit(
                "determinism",
                format!(
                    "`{}` iteration order varies run-to-run; use BTreeMap/BTreeSet or a Vec",
                    t.text
                ),
            ),
            "SystemTime" => emit(
                "determinism",
                "wall-clock reads in library code break bit-reproducible descents".into(),
            ),
            "Instant" if next.is_some_and(|n| n.is_punct("::")) && next2.is_some_and(|n| n.is_ident("now")) => {
                emit(
                    "determinism",
                    "`Instant::now()` in library code breaks bit-reproducible descents".into(),
                )
            }
            "unwrap" | "expect"
                if prev.is_some_and(|p| p.is_punct(".")) && next.is_some_and(|n| n.is_punct("(")) =>
            {
                emit(
                    "panic-surface",
                    format!(
                        "`.{}()` in library code; return a typed error (CcqError/NnError/...) or waive with the invariant",
                        t.text
                    ),
                )
            }
            "panic" | "unreachable" | "todo" | "unimplemented"
                if next.is_some_and(|n| n.is_punct("!")) =>
            {
                emit(
                    "panic-surface",
                    format!("`{}!` in library code; return a typed error instead", t.text),
                )
            }
            "feature"
                if next.is_some_and(|n| n.is_punct("="))
                    && next2.is_some_and(|n| n.kind == TokKind::Str) =>
            {
                let name = &next2.map(|n| n.text.clone()).unwrap_or_default();
                if !ctx.features.contains(name) {
                    emit(
                        "feature-hygiene",
                        format!(
                            "feature \"{name}\" is not declared in {}'s Cargo.toml [features]",
                            ctx.crate_name
                        ),
                    )
                }
            }
            _ => {}
        },
        TokKind::Punct if t.text == "==" || t.text == "!=" => {
            let lit_next = next.is_some_and(Tok::is_float)
                || (next.is_some_and(|n| n.is_punct("-")) && next2.is_some_and(Tok::is_float));
            if prev.is_some_and(Tok::is_float) || lit_next {
                emit(
                    "float-eq",
                    format!(
                        "float-literal comparison with `{}`; use a tolerance, or waive if the value is an exact sentinel",
                        t.text
                    ),
                )
            }
        }
        _ => {}
    }
}

/// Extracts waiver directives from comment tokens. Returns the parsed
/// waivers plus diagnostics for malformed ones (missing reason, unknown
/// rule); those diagnostics are not themselves waivable.
fn collect_waivers(ctx: &FileCtx<'_>, toks: &[Tok]) -> (Vec<Waiver>, Vec<Finding>) {
    let mut waivers = Vec::new();
    let mut findings = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind != TokKind::Comment {
            continue;
        }
        let text = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        let Some(rest) = text.strip_prefix("ccq-lint:") else {
            continue;
        };
        let mut bad = |message: String| {
            findings.push(Finding {
                path: ctx.path.clone(),
                line: t.line,
                col: t.col,
                rule: "waiver",
                message,
            });
        };
        let rest = rest.trim_start();
        let Some((inside, reason)) = rest.strip_prefix("allow(").and_then(|r| r.split_once(')'))
        else {
            bad("malformed waiver; expected `ccq-lint: allow(rule-name) — reason`".into());
            continue;
        };
        let rules: Vec<String> = inside
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let mut ok = !rules.is_empty();
        for r in &rules {
            if !RULE_NAMES.contains(&r.as_str()) {
                bad(format!("waiver names unknown rule `{r}`"));
                ok = false;
            }
        }
        let reason = reason.trim_matches([' ', '\t', '-', '—', '–', ':']);
        if reason.is_empty() {
            bad("waiver requires a non-empty reason after the rule list".into());
            ok = false;
        }
        if !ok {
            continue;
        }
        // A standalone comment covers the next code line; a trailing
        // comment covers its own line.
        let standalone = !toks[..i]
            .iter()
            .rev()
            .take_while(|p| p.line == t.line)
            .any(|p| p.kind != TokKind::Comment);
        let covers = if standalone {
            match toks[i + 1..].iter().find(|n| n.kind != TokKind::Comment) {
                Some(n) => n.line,
                None => continue,
            }
        } else {
            t.line
        };
        waivers.push(Waiver { rules, covers });
    }
    (waivers, findings)
}

/// Marks every token that belongs to test-only code: the bodies of
/// `#[cfg(test)]` items and `#[test]` functions (an inner
/// `#![cfg(test)]` marks the whole file).
fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let code: Vec<usize> = (0..toks.len())
        .filter(|&i| toks[i].kind != TokKind::Comment)
        .collect();
    let mut p = 0usize;
    while p < code.len() {
        if !toks[code[p]].is_punct("#") {
            p += 1;
            continue;
        }
        let mut q = p + 1;
        let inner = code.get(q).is_some_and(|&i| toks[i].is_punct("!"));
        if inner {
            q += 1;
        }
        if !code.get(q).is_some_and(|&i| toks[i].is_punct("[")) {
            p += 1;
            continue;
        }
        let (attr, after) = attr_tokens(toks, &code, q);
        if attr != ["cfg", "(", "test", ")"] && attr != ["test"] {
            p = after;
            continue;
        }
        if inner {
            mask.iter_mut().for_each(|m| *m = true);
            return mask;
        }
        // Skip any further attributes on the same item.
        let mut m = after;
        while code.get(m).is_some_and(|&i| toks[i].is_punct("#"))
            && code.get(m + 1).is_some_and(|&i| toks[i].is_punct("["))
        {
            m = attr_tokens(toks, &code, m + 1).1;
        }
        // The item extends to its closing brace, or to `;` for
        // brace-less items (`#[cfg(test)] use …;`).
        let end = item_end(toks, &code, m);
        for &i in &code[p..end.min(code.len())] {
            mask[i] = true;
        }
        p = end;
    }
    mask
}

/// With `code[open]` on a `[`, returns the attribute's identifier/punct
/// text (exclusive of the outer brackets) and the code index just past
/// the matching `]`.
fn attr_tokens<'t>(toks: &'t [Tok], code: &[usize], open: usize) -> (Vec<&'t str>, usize) {
    let mut depth = 0usize;
    let mut out = Vec::new();
    let mut q = open;
    while q < code.len() {
        let t = &toks[code[q]];
        if t.is_punct("[") {
            depth += 1;
            if depth > 1 {
                out.push("[");
            }
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                return (out, q + 1);
            }
            out.push("]");
        } else {
            out.push(t.text.as_str());
        }
        q += 1;
    }
    (out, q)
}

/// Finds the code index one past the end of the item starting at
/// `code[start]`: past the matching `}` of its first brace, or past a
/// top-level `;`, whichever comes first.
fn item_end(toks: &[Tok], code: &[usize], start: usize) -> usize {
    let mut depth = 0usize;
    let mut q = start;
    while q < code.len() {
        let t = &toks[code[q]];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return q + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return q + 1;
        }
        q += 1;
    }
    q
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_ctx(features: &BTreeSet<String>) -> FileCtx<'_> {
        FileCtx {
            path: "crates/core/src/x.rs".into(),
            crate_name: "ccq",
            kind: FileKind::LibrarySrc,
            features,
        }
    }

    #[test]
    fn cfg_test_regions_are_exempt() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let src = "fn a() {}\n#[cfg(test)]\nmod tests {\n    fn b() { x.unwrap(); }\n}\n";
        assert!(check_file(&ctx, src).is_empty());
        let src = "fn a() { x.unwrap(); }";
        assert_eq!(check_file(&ctx, src).len(), 1);
    }

    #[test]
    fn unprotected_crate_may_unwrap_but_not_unsafe() {
        let feats = BTreeSet::new();
        let mut ctx = lib_ctx(&feats);
        ctx.crate_name = "ccq-data";
        assert!(check_file(&ctx, "fn a() { x.unwrap(); }").is_empty());
        let f = check_file(&ctx, "unsafe fn a() {}");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-unsafe");
    }

    #[test]
    fn waiver_scope_is_one_line() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let src = "\
// ccq-lint: allow(panic-surface) — invariant holds by construction
fn a() { x.unwrap(); }
fn b() { y.unwrap(); }
";
        let f = check_file(&ctx, src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn display_format_is_grep_friendly() {
        let feats = BTreeSet::new();
        let ctx = lib_ctx(&feats);
        let f = &check_file(&ctx, "fn a() { panic!(\"x\") }")[0];
        assert_eq!(
            f.to_string(),
            "crates/core/src/x.rs:1:10: panic-surface: `panic!` in library code; return a typed error instead"
        );
    }
}
