//! A minimal hand-rolled Rust lexer.
//!
//! The vendor set has no `syn`, so `ccq-lint` tokenizes source itself.
//! The lexer's one job is to be *reliable about what is code*: rule
//! patterns must never fire inside comments, string literals, raw
//! strings, byte strings, or char literals, and waiver comments must be
//! recoverable with their line numbers. It does not parse; downstream
//! rules work on the flat token stream.

/// What a token is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `fn`, ...).
    Ident,
    /// An integer or float literal; `float` distinguishes `1.5` / `2e3`
    /// from `42`.
    Number {
        /// Whether the literal is a floating-point literal.
        float: bool,
    },
    /// A string literal of any flavor (`"…"`, `r#"…"#`, `b"…"`, `c"…"`);
    /// the token text is the *unquoted content*.
    Str,
    /// A char or byte-char literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`) or loop label.
    Lifetime,
    /// Punctuation. Multi-character operators that the rules care about
    /// (`==`, `!=`, `::`) are single tokens; everything else is emitted
    /// one character at a time.
    Punct,
    /// A comment. Line comments keep their full text (waivers live
    /// there); block comments keep text too.
    Comment,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// The token text (unquoted content for [`TokKind::Str`]).
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Tok {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokKind::Punct && self.text == s
    }

    /// Whether this token is a float literal.
    pub fn is_float(&self) -> bool {
        matches!(self.kind, TokKind::Number { float: true })
    }

    /// Whether this token is a string literal (its `text` holds the
    /// unquoted content, escapes unresolved — see [`crate::extract`]).
    pub fn is_str(&self) -> bool {
        self.kind == TokKind::Str
    }
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xc0 != 0x80 {
            // Count characters, not continuation bytes.
            self.col += 1;
        }
        Some(b)
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s.as_bytes())
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Tokenizes `src`. The lexer never fails: unexpected bytes become
/// single-character [`TokKind::Punct`] tokens, and unterminated literals
/// run to end of input (good enough for a lint pass over code that also
/// has to compile).
pub fn lex(src: &str) -> Vec<Tok> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut toks = Vec::new();
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                toks.push(tok(TokKind::Comment, &src[start..c.pos], line, col));
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1usize;
                while depth > 0 && c.peek().is_some() {
                    if c.starts_with("/*") {
                        depth += 1;
                        c.bump();
                        c.bump();
                    } else if c.starts_with("*/") {
                        depth -= 1;
                        c.bump();
                        c.bump();
                    } else {
                        c.bump();
                    }
                }
                toks.push(tok(TokKind::Comment, &src[start..c.pos], line, col));
            }
            b'"' => {
                let text = lex_quoted(&mut c);
                toks.push(tok(TokKind::Str, &text, line, col));
            }
            b'\'' => lex_char_or_lifetime(&mut c, src, &mut toks, line, col),
            _ if is_ident_start(b) => {
                if let Some(text) = lex_string_prefix(&mut c) {
                    toks.push(tok(TokKind::Str, &text, line, col));
                    continue;
                }
                if byte_char_prefix(&c) {
                    // b'x' — consume the `b`, then the char literal.
                    c.bump();
                    lex_char_body(&mut c);
                    toks.push(tok(TokKind::Char, "", line, col));
                    continue;
                }
                let start = c.pos;
                while c.peek().is_some_and(is_ident_cont) {
                    c.bump();
                }
                toks.push(tok(TokKind::Ident, &src[start..c.pos], line, col));
            }
            _ if b.is_ascii_digit() => {
                let (text, float) = lex_number(&mut c, src);
                toks.push(tok(TokKind::Number { float }, &text, line, col));
            }
            _ => {
                // Multi-char operators the rules match on stay fused;
                // everything else is one Punct per character.
                let fused = ["==", "!=", "::", "=>"]
                    .into_iter()
                    .find(|op| c.starts_with(op));
                match fused {
                    Some(op) => {
                        c.bump();
                        c.bump();
                        toks.push(tok(TokKind::Punct, op, line, col));
                    }
                    None => {
                        c.bump();
                        toks.push(tok(TokKind::Punct, &src[c.pos - 1..c.pos], line, col));
                    }
                }
            }
        }
    }
    toks
}

fn tok(kind: TokKind, text: &str, line: u32, col: u32) -> Tok {
    Tok {
        kind,
        text: text.to_string(),
        line,
        col,
    }
}

/// Consumes a `"…"` literal (cursor on the opening quote); returns the
/// unquoted content.
fn lex_quoted(c: &mut Cursor<'_>) -> String {
    c.bump();
    let start = c.pos;
    loop {
        match c.peek() {
            None => break,
            Some(b'\\') => {
                c.bump();
                c.bump();
            }
            Some(b'"') => break,
            _ => {
                c.bump();
            }
        }
    }
    let content = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
    c.bump(); // closing quote
    content
}

/// Recognizes `r"…"`, `r#"…"#`, `b"…"`, `br##"…"##`, `c"…"`, `cr"…"` at
/// an identifier-start position. Returns the content when a string
/// prefix is present, leaving the cursor past the literal.
fn lex_string_prefix(c: &mut Cursor<'_>) -> Option<String> {
    let rest = &c.src[c.pos..];
    let prefix_len = ["br", "cr", "r", "b", "c"]
        .iter()
        .find(|p| {
            rest.starts_with(p.as_bytes())
                && matches!(rest.get(p.len()), Some(b'"') | Some(b'#'))
                && (p.contains('r') || rest.get(p.len()) == Some(&b'"'))
        })
        .map(|p| p.len())?;
    let raw = rest[..prefix_len].contains(&b'r');
    for _ in 0..prefix_len {
        c.bump();
    }
    if !raw {
        return Some(lex_quoted(c));
    }
    // Raw string: count hashes, then scan for `"` followed by that many.
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek() != Some(b'"') {
        return Some(String::new());
    }
    c.bump();
    let start = c.pos;
    let closer: Vec<u8> = std::iter::once(b'"')
        .chain(std::iter::repeat_n(b'#', hashes))
        .collect();
    while c.peek().is_some() && !c.src[c.pos..].starts_with(&closer) {
        c.bump();
    }
    let content = String::from_utf8_lossy(&c.src[start..c.pos]).into_owned();
    for _ in 0..closer.len() {
        c.bump();
    }
    Some(content)
}

/// Whether the cursor sits on a `b'…'` byte-char literal.
fn byte_char_prefix(c: &Cursor<'_>) -> bool {
    c.peek() == Some(b'b') && c.peek_at(1) == Some(b'\'')
}

/// Consumes a char-literal body with the cursor on the opening `'`.
fn lex_char_body(c: &mut Cursor<'_>) {
    c.bump(); // opening '
    if c.peek() == Some(b'\\') {
        c.bump();
        c.bump();
    } else {
        c.bump();
    }
    // Unicode escapes (`'\u{1F600}'`) leave trailing chars; consume to
    // the closing quote.
    while c.peek().is_some_and(|b| b != b'\'' && b != b'\n') {
        c.bump();
    }
    c.bump(); // closing '
}

/// Disambiguates `'a'` (char) from `'a` (lifetime) with the cursor on
/// the `'`.
fn lex_char_or_lifetime(c: &mut Cursor<'_>, src: &str, toks: &mut Vec<Tok>, line: u32, col: u32) {
    let next = c.peek_at(1);
    let is_char = match next {
        Some(b'\\') => true,
        Some(b) if is_ident_start(b) => c.peek_at(2) == Some(b'\''),
        Some(_) => true, // '(' , '0' etc. — any non-ident char literal
        None => true,
    };
    if is_char {
        lex_char_body(c);
        toks.push(tok(TokKind::Char, "", line, col));
    } else {
        c.bump(); // '
        let start = c.pos;
        while c.peek().is_some_and(is_ident_cont) {
            c.bump();
        }
        toks.push(tok(TokKind::Lifetime, &src[start..c.pos], line, col));
    }
}

/// Consumes a numeric literal; returns (text, is_float).
fn lex_number(c: &mut Cursor<'_>, src: &str) -> (String, bool) {
    let start = c.pos;
    let mut float = false;
    if c.starts_with("0x") || c.starts_with("0o") || c.starts_with("0b") {
        c.bump();
        c.bump();
        while c
            .peek()
            .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_')
        {
            c.bump();
        }
        return (src[start..c.pos].to_string(), false);
    }
    while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        c.bump();
    }
    // A `.` continues the literal only when it is not `..` (range) and
    // not a method call (`1.max(2)`).
    if c.peek() == Some(b'.')
        && c.peek_at(1) != Some(b'.')
        && !c.peek_at(1).is_some_and(is_ident_start)
    {
        float = true;
        c.bump();
        while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
    }
    if matches!(c.peek(), Some(b'e') | Some(b'E'))
        && (c.peek_at(1).is_some_and(|b| b.is_ascii_digit())
            || (matches!(c.peek_at(1), Some(b'+') | Some(b'-'))
                && c.peek_at(2).is_some_and(|b| b.is_ascii_digit())))
    {
        float = true;
        c.bump();
        if matches!(c.peek(), Some(b'+') | Some(b'-')) {
            c.bump();
        }
        while c.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            c.bump();
        }
    }
    // Type suffix (`1.5f32`, `42u8`).
    let suffix_start = c.pos;
    while c.peek().is_some_and(is_ident_cont) {
        c.bump();
    }
    let suffix = &src[suffix_start..c.pos];
    if suffix.starts_with("f32") || suffix.starts_with("f64") {
        float = true;
    }
    (src[start..c.pos].to_string(), float)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn skips_strings_and_comments() {
        let toks = kinds("let x = \"unwrap() // not code\"; // panic! here\n/* unsafe */ y");
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokKind::Ident || (t != "unwrap" && t != "unsafe")));
        let comments: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Comment)
            .collect();
        assert_eq!(comments.len(), 2);
    }

    #[test]
    fn raw_and_byte_strings() {
        let toks = kinds(r####"let a = r#"x "quoted" unsafe"#; let b = b"panic!"; c"####);
        let idents: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, ["let", "a", "let", "b", "c"]);
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let d = '\\n'; }");
        let lifetimes = toks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count();
        let chars = toks.iter().filter(|(k, _)| *k == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_detection() {
        assert!(lex("1.5")[0].is_float());
        assert!(lex("2e3")[0].is_float());
        assert!(lex("1f32")[0].is_float());
        assert!(lex("1.")[0].is_float());
        assert!(!lex("42")[0].is_float());
        assert!(!lex("0x1f")[0].is_float());
        // `1..2` is two ints and a range, `1.max(2)` is a method call.
        assert!(lex("1..2").iter().all(|t| !t.is_float()));
        assert!(lex("1.max(2)").iter().all(|t| !t.is_float()));
    }

    #[test]
    fn fused_operators() {
        let toks = lex("a == b != c :: d = e => f");
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, ["==", "!=", "::", "=", "=>"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }
}
