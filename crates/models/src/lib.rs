//! ResNet-style architecture builders, width-scaled for a CPU substrate.
//!
//! The paper evaluates ResNet20 (CIFAR10) and ResNet18/ResNet50 (ImageNet).
//! These builders reproduce the *structure* of those networks — stem
//! convolution, staged residual blocks with stride-2 downsampling and
//! projection shortcuts, global average pooling, linear classifier — with a
//! configurable base width so the experiments run on a CPU. The structural
//! facts CCQ exploits (first/last-layer sensitivity, heterogeneous layer
//! sizes) are preserved; see DESIGN.md §2.
//!
//! # Example
//!
//! ```
//! use ccq_models::{resnet20, ModelConfig};
//! use ccq_quant::PolicyKind;
//!
//! let mut net = resnet20(&ModelConfig { classes: 10, width: 4, policy: PolicyKind::Pact, seed: 0 });
//! // 9 basic blocks + stem + head (+2 projection shortcuts) = 22 layers.
//! assert_eq!(net.quant_layer_count(), 22);
//! ```

mod resnet;
mod simple;

pub use resnet::{resnet18, resnet20, resnet50_style, ModelConfig, ModelKind};
pub use simple::{mlp, plain_cnn};
