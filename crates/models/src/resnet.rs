//! ResNet family builders.

use ccq_nn::layers::{
    BasicBlock, BatchNorm2d, Bottleneck, GlobalAvgPool, QConv2d, QLinear, Relu, Sequential,
};
use ccq_nn::Network;
use ccq_quant::{PolicyKind, QuantSpec};
use ccq_tensor::rng;
use std::fmt;
use std::str::FromStr;

/// Shared configuration for the ResNet builders.
///
/// All layers start at full precision with the given policy; quantization
/// is applied afterwards (one-shot baselines call
/// [`ccq_nn::Network::set_all_quant_specs`]; CCQ walks the bit ladder).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelConfig {
    /// Number of output classes.
    pub classes: usize,
    /// Base channel width (the paper's networks correspond to 16 for
    /// ResNet20 and 64 for ResNet18/50; 4–8 is CPU-friendly).
    pub width: usize,
    /// Quantization policy installed in every layer.
    pub policy: PolicyKind,
    /// Weight-initialization seed.
    pub seed: u64,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            classes: 10,
            width: 4,
            policy: PolicyKind::Pact,
            seed: 0,
        }
    }
}

/// The three paper architectures, for harness dispatch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// CIFAR-style ResNet20 (3 stages × 3 basic blocks).
    Resnet20,
    /// ResNet18-style (4 stages × 2 basic blocks).
    Resnet18,
    /// ResNet50-style (4 stages × 2 bottleneck blocks, depth-reduced).
    Resnet50,
}

impl ModelKind {
    /// Builds the network for this kind.
    pub fn build(&self, cfg: &ModelConfig) -> Network {
        match self {
            ModelKind::Resnet20 => resnet20(cfg),
            ModelKind::Resnet18 => resnet18(cfg),
            ModelKind::Resnet50 => resnet50_style(cfg),
        }
    }
}

impl fmt::Display for ModelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ModelKind::Resnet20 => "ResNet20",
            ModelKind::Resnet18 => "ResNet18",
            ModelKind::Resnet50 => "ResNet50",
        };
        f.pad(s)
    }
}

impl FromStr for ModelKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "resnet20" => Ok(ModelKind::Resnet20),
            "resnet18" => Ok(ModelKind::Resnet18),
            "resnet50" => Ok(ModelKind::Resnet50),
            other => Err(format!("unknown model '{other}'")),
        }
    }
}

/// CIFAR-style ResNet20: 3×3 stem, three stages of three [`BasicBlock`]s at
/// widths `w, 2w, 4w` (stride 2 between stages), global average pool,
/// linear head. 22 quantizable layers at width ≥ 2 (two stages add
/// projection shortcuts).
pub fn resnet20(cfg: &ModelConfig) -> Network {
    let mut r = rng(cfg.seed);
    let spec = QuantSpec::full_precision(cfg.policy);
    let w = cfg.width.max(1);
    let mut layers: Vec<Box<dyn ccq_nn::Layer>> = vec![
        Box::new(QConv2d::new_3x3("stem.conv", 3, w, 1, spec, &mut r)),
        Box::new(BatchNorm2d::new("stem.bn", w)),
        Box::new(Relu::new()),
    ];
    let widths = [w, 2 * w, 4 * w];
    let mut in_ch = w;
    for (si, &out_ch) in widths.iter().enumerate() {
        for bi in 0..3 {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            layers.push(Box::new(BasicBlock::new(
                format!("stage{si}.block{bi}"),
                in_ch,
                out_ch,
                stride,
                spec,
                &mut r,
            )));
            in_ch = out_ch;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(QLinear::new(
        "head.fc",
        in_ch,
        cfg.classes,
        spec,
        &mut r,
    )));
    Network::new(Sequential::named("resnet20", layers))
}

/// ResNet18-style: 3×3 stem (small-image variant of the 7×7 stem), four
/// stages of two [`BasicBlock`]s at widths `w, 2w, 4w, 8w`.
pub fn resnet18(cfg: &ModelConfig) -> Network {
    let mut r = rng(cfg.seed);
    let spec = QuantSpec::full_precision(cfg.policy);
    let w = cfg.width.max(1);
    let mut layers: Vec<Box<dyn ccq_nn::Layer>> = vec![
        Box::new(QConv2d::new_3x3("stem.conv", 3, w, 1, spec, &mut r)),
        Box::new(BatchNorm2d::new("stem.bn", w)),
        Box::new(Relu::new()),
    ];
    let widths = [w, 2 * w, 4 * w, 8 * w];
    let mut in_ch = w;
    for (si, &out_ch) in widths.iter().enumerate() {
        for bi in 0..2 {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            layers.push(Box::new(BasicBlock::new(
                format!("stage{si}.block{bi}"),
                in_ch,
                out_ch,
                stride,
                spec,
                &mut r,
            )));
            in_ch = out_ch;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(QLinear::new(
        "head.fc",
        in_ch,
        cfg.classes,
        spec,
        &mut r,
    )));
    Network::new(Sequential::named("resnet18", layers))
}

/// ResNet50-style: four stages of two [`Bottleneck`] blocks (1×1–3×3–1×1
/// with 4× expansion), depth-reduced from the paper's `[3,4,6,3]` stage plan to run on a
/// CPU while keeping the bottleneck structure.
pub fn resnet50_style(cfg: &ModelConfig) -> Network {
    let mut r = rng(cfg.seed);
    let spec = QuantSpec::full_precision(cfg.policy);
    let w = cfg.width.max(1);
    let mut layers: Vec<Box<dyn ccq_nn::Layer>> = vec![
        Box::new(QConv2d::new_3x3("stem.conv", 3, w, 1, spec, &mut r)),
        Box::new(BatchNorm2d::new("stem.bn", w)),
        Box::new(Relu::new()),
    ];
    let mids = [w, 2 * w, 4 * w, 8 * w];
    let mut in_ch = w;
    for (si, &mid) in mids.iter().enumerate() {
        let out_ch = 4 * mid;
        for bi in 0..2 {
            let stride = if si > 0 && bi == 0 { 2 } else { 1 };
            layers.push(Box::new(Bottleneck::new(
                format!("stage{si}.block{bi}"),
                in_ch,
                mid,
                out_ch,
                stride,
                spec,
                &mut r,
            )));
            in_ch = out_ch;
        }
    }
    layers.push(Box::new(GlobalAvgPool::new()));
    layers.push(Box::new(QLinear::new(
        "head.fc",
        in_ch,
        cfg.classes,
        spec,
        &mut r,
    )));
    Network::new(Sequential::named("resnet50", layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccq_nn::Mode;
    use ccq_tensor::Tensor;

    #[test]
    fn resnet20_layer_count() {
        let mut net = resnet20(&ModelConfig::default());
        // stem + 9 blocks × 2 convs + 2 projection shortcuts + fc = 22.
        assert_eq!(net.quant_layer_count(), 22);
    }

    #[test]
    fn resnet18_layer_count() {
        let mut net = resnet18(&ModelConfig::default());
        // stem + 8 blocks × 2 convs + 3 shortcuts + fc = 21.
        assert_eq!(net.quant_layer_count(), 21);
    }

    #[test]
    fn resnet50_layer_count() {
        let mut net = resnet50_style(&ModelConfig::default());
        // stem + 8 bottlenecks × 3 convs + 4 shortcuts + fc = 30.
        assert_eq!(net.quant_layer_count(), 30);
    }

    #[test]
    fn forward_shapes_on_16px_input() {
        for kind in [
            ModelKind::Resnet20,
            ModelKind::Resnet18,
            ModelKind::Resnet50,
        ] {
            let mut net = kind.build(&ModelConfig {
                width: 2,
                ..Default::default()
            });
            let x = Tensor::zeros(&[2, 3, 16, 16]);
            let y = net.forward(&x, Mode::Eval).unwrap();
            assert_eq!(y.shape(), &[2, 10], "{kind}");
        }
    }

    #[test]
    fn first_layer_is_stem_last_is_head() {
        let mut net = resnet20(&ModelConfig::default());
        let info = net.quant_layer_info();
        assert_eq!(info.first().unwrap().label, "stem.conv");
        assert_eq!(info.last().unwrap().label, "head.fc");
    }

    #[test]
    fn layer_sizes_are_heterogeneous() {
        let mut net = resnet20(&ModelConfig::default());
        let info = net.quant_layer_info();
        let min = info.iter().map(|i| i.weight_count).min().unwrap();
        let max = info.iter().map(|i| i.weight_count).max().unwrap();
        assert!(
            max > 10 * min,
            "CCQ's λ-weighting needs size spread: {min}..{max}"
        );
    }

    #[test]
    fn macs_populated_after_forward() {
        let mut net = resnet20(&ModelConfig {
            width: 2,
            ..Default::default()
        });
        let x = Tensor::zeros(&[1, 3, 16, 16]);
        let _ = net.forward(&x, Mode::Eval).unwrap();
        let info = net.quant_layer_info();
        assert!(info.iter().all(|i| i.macs > 0));
        // The stem sees the largest spatial extent but few channels; a
        // middle stage-2 conv should out-MAC the head fc.
        let head = info.last().unwrap().macs;
        let mid = info[info.len() / 2].macs;
        assert!(mid > head);
    }

    #[test]
    fn model_kind_parse_round_trip() {
        for k in [
            ModelKind::Resnet20,
            ModelKind::Resnet18,
            ModelKind::Resnet50,
        ] {
            assert_eq!(k.to_string().parse::<ModelKind>().unwrap(), k);
        }
        assert!("vgg".parse::<ModelKind>().is_err());
    }

    #[test]
    fn training_mode_backward_runs() {
        let mut net = resnet20(&ModelConfig {
            width: 2,
            ..Default::default()
        });
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = net.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.shape());
        let dx = net.backward(&g).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }
}
