//! Small non-residual architectures (fast tests, MLP workloads).

use ccq_nn::layers::{BatchNorm2d, GlobalAvgPool, MaxPool2d, QConv2d, QLinear, Relu, Sequential};
use ccq_nn::Network;
use ccq_quant::{PolicyKind, QuantSpec};
use ccq_tensor::rng;

/// A plain convolutional network: three conv–bn–relu stages with a max-pool
/// after the first, global average pooling, and a linear head. Useful for
/// fast end-to-end tests where residual structure is irrelevant.
pub fn plain_cnn(classes: usize, width: usize, policy: PolicyKind, seed: u64) -> Network {
    let mut r = rng(seed);
    let spec = QuantSpec::full_precision(policy);
    let w = width.max(1);
    let layers: Vec<Box<dyn ccq_nn::Layer>> = vec![
        Box::new(QConv2d::new_3x3("conv1", 3, w, 1, spec, &mut r)),
        Box::new(BatchNorm2d::new("bn1", w)),
        Box::new(Relu::new()),
        Box::new(MaxPool2d::new(2, 2)),
        Box::new(QConv2d::new_3x3("conv2", w, 2 * w, 1, spec, &mut r)),
        Box::new(BatchNorm2d::new("bn2", 2 * w)),
        Box::new(Relu::new()),
        Box::new(QConv2d::new_3x3("conv3", 2 * w, 2 * w, 2, spec, &mut r)),
        Box::new(BatchNorm2d::new("bn3", 2 * w)),
        Box::new(Relu::new()),
        Box::new(GlobalAvgPool::new()),
        Box::new(QLinear::new("fc", 2 * w, classes, spec, &mut r)),
    ];
    Network::new(Sequential::named("plain_cnn", layers))
}

/// A multi-layer perceptron over flat feature vectors. `dims` gives the
/// layer widths from input to output, e.g. `[8, 16, 4]` is an
/// 8→16→4 network with one hidden ReLU layer.
///
/// # Panics
///
/// Panics when `dims` has fewer than two entries.
pub fn mlp(dims: &[usize], policy: PolicyKind, seed: u64) -> Network {
    assert!(dims.len() >= 2, "mlp needs at least input and output dims");
    let mut r = rng(seed);
    let spec = QuantSpec::full_precision(policy);
    let mut layers: Vec<Box<dyn ccq_nn::Layer>> = Vec::new();
    for (i, pair) in dims.windows(2).enumerate() {
        layers.push(Box::new(QLinear::new(
            format!("fc{i}"),
            pair[0],
            pair[1],
            spec,
            &mut r,
        )));
        if i + 2 < dims.len() {
            layers.push(Box::new(Relu::new()));
        }
    }
    Network::new(Sequential::named("mlp", layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ccq_nn::Mode;
    use ccq_tensor::Tensor;

    #[test]
    fn plain_cnn_forward_shape() {
        let mut net = plain_cnn(5, 2, PolicyKind::Pact, 0);
        let y = net
            .forward(&Tensor::zeros(&[3, 3, 8, 8]), Mode::Eval)
            .unwrap();
        assert_eq!(y.shape(), &[3, 5]);
        assert_eq!(net.quant_layer_count(), 4);
    }

    #[test]
    fn mlp_structure() {
        let mut net = mlp(&[6, 12, 12, 3], PolicyKind::Dorefa, 1);
        assert_eq!(net.quant_layer_count(), 3);
        let y = net.forward(&Tensor::zeros(&[2, 6]), Mode::Eval).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn mlp_rejects_single_dim() {
        let _ = mlp(&[4], PolicyKind::Pact, 0);
    }

    #[test]
    fn flatten_is_reexported_for_downstream_users() {
        // Smoke-check the import surface used by examples.
        let _ = ccq_nn::layers::Flatten::new();
    }
}
