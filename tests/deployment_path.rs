//! Cross-crate integration: the deployment path — CCQ quantizes a network,
//! the result survives a checkpoint round trip, and the max-abs layers
//! execute identically in true integer arithmetic.

use ccq_repro::ccq::{CcqConfig, CcqRunner, RecoveryMode};
use ccq_repro::data::{gaussian_blobs, BlobsConfig};
use ccq_repro::models::mlp;
use ccq_repro::nn::checkpoint::Checkpoint;
use ccq_repro::nn::integer::{int_linear, QuantizedTensor};
use ccq_repro::nn::train::train_epoch;
use ccq_repro::nn::{Mode, Network, Sgd};
use ccq_repro::quant::{BitLadder, BitWidth, PolicyKind, QuantSpec};
use ccq_repro::tensor::{rng, Init, Rng64, Tensor};

fn trained_mlp() -> (
    Network,
    Vec<ccq_repro::nn::train::Batch>,
    Vec<ccq_repro::nn::train::Batch>,
) {
    let ds = gaussian_blobs(&BlobsConfig {
        classes: 3,
        dim: 6,
        samples_per_class: 48,
        std: 0.35,
        seed: 70,
    });
    let (train, val) = ds.split_at(108);
    let (train_b, val_b) = (train.batches(16), val.batches(36));
    let mut net = mlp(&[6, 12, 3], PolicyKind::MaxAbs, 15);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    let mut r = rng(16);
    for _ in 0..12 {
        train_epoch(&mut net, &train_b, &mut opt, &mut r).unwrap();
    }
    (net, train_b, val_b)
}

#[test]
fn ccq_result_survives_checkpoint_round_trip() {
    let (mut net, train_b, val_b) = trained_mlp();
    let cfg = CcqConfig {
        ladder: BitLadder::new(&[8, 4]).unwrap(),
        recovery: RecoveryMode::Manual { epochs: 1 },
        probe_val_batches: 1,
        seed: 17,
        ..CcqConfig::default()
    };
    let mut provider = |_: &mut Rng64| train_b.clone();
    let report = CcqRunner::new(cfg)
        .run_with_sources(&mut net, &mut provider, &val_b)
        .unwrap();

    let x = Tensor::ones(&[2, 6]);
    let y_before = net.forward(&x, Mode::Eval).unwrap();
    let bytes = Checkpoint::capture(&mut net).to_bytes();

    // A fresh network of the same architecture, different weights.
    let mut fresh = mlp(&[6, 12, 3], PolicyKind::MaxAbs, 999);
    Checkpoint::from_bytes(&bytes)
        .unwrap()
        .apply(&mut fresh)
        .unwrap();
    let y_after = fresh.forward(&x, Mode::Eval).unwrap();
    assert_eq!(y_before.as_slice(), y_after.as_slice());

    // The mixed-precision assignment came along.
    let restored: Vec<BitWidth> = (0..fresh.quant_layer_count())
        .map(|i| fresh.quant_spec(i).weight_bits)
        .collect();
    let from_report: Vec<BitWidth> = report.bit_assignment.iter().map(|(_, w, _)| *w).collect();
    assert_eq!(restored, from_report);
}

#[test]
fn fake_quant_linear_matches_integer_execution() {
    // A single max-abs quantized linear layer must compute the same result
    // through the fake-quant f32 path and the integer path.
    let mut r = rng(18);
    let w = Init::Normal {
        mean: 0.0,
        std: 0.5,
    }
    .sample(&[4, 6], &mut r);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.sample(&[3, 6], &mut r);
    for bits in [3u32, 4, 8] {
        // Integer path.
        let qx = QuantizedTensor::from_tensor(&x, bits);
        let qw = QuantizedTensor::from_tensor(&w, bits);
        let y_int = int_linear(&qx, &qw, None).unwrap();
        // Fake-quant path through the quant crate's kernels.
        let spec = QuantSpec::new(PolicyKind::MaxAbs, BitWidth::of(bits), BitWidth::of(bits));
        let lq = ccq_repro::quant::LayerQuant::new(spec);
        let wq = lq.quantize_weights(&w);
        let xq = lq.quantize_acts(&x);
        let y_fake = ccq_repro::tensor::ops::matmul_a_bt(&xq, &wq).unwrap();
        for (a, b) in y_int.as_slice().iter().zip(y_fake.as_slice()) {
            assert!(
                (a - b).abs() < 1e-4 * (1.0 + b.abs()),
                "bits={bits}: {a} vs {b}"
            );
        }
    }
}

#[test]
fn checkpoint_bytes_are_stable_across_captures() {
    let (mut net, _, _) = trained_mlp();
    let a = Checkpoint::capture(&mut net).to_bytes();
    let b = Checkpoint::capture(&mut net).to_bytes();
    assert_eq!(a, b, "capturing twice without training must be identical");
}
