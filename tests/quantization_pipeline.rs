//! Cross-crate integration: quantization-aware training with every policy,
//! and consistency between the quant specs and the hardware accounting.

use ccq_repro::ccq::layer_profiles;
use ccq_repro::data::{gaussian_blobs, BlobsConfig};
use ccq_repro::hw::{model_size, network_power, MacEnergyModel};
use ccq_repro::models::{mlp, plain_cnn};
use ccq_repro::nn::train::{evaluate, train_epoch};
use ccq_repro::nn::{Mode, Sgd};
use ccq_repro::quant::{BitWidth, PolicyKind, QuantSpec};
use ccq_repro::tensor::{rng, Tensor};

/// QAT with each policy at 4 bits still learns the blob task.
#[test]
fn qat_learns_under_every_policy() {
    let data = gaussian_blobs(&BlobsConfig {
        classes: 3,
        dim: 6,
        samples_per_class: 48,
        std: 0.35,
        seed: 40,
    });
    let (train, val) = data.split_at(108);
    let (train_b, val_b) = (train.batches(16), val.batches(36));
    for policy in PolicyKind::ALL {
        let mut net = mlp(&[6, 16, 3], policy, 11);
        net.set_all_quant_specs(QuantSpec::new(policy, BitWidth::of(4), BitWidth::of(4)));
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let mut r = rng(12);
        for _ in 0..25 {
            train_epoch(&mut net, &train_b, &mut opt, &mut r).unwrap();
        }
        let acc = evaluate(&mut net, &val_b).unwrap().accuracy;
        assert!(
            acc > 0.7,
            "{policy}: 4-bit QAT should learn blobs, got {acc}"
        );
    }
}

/// The compression reported by the hw crate matches the spec arithmetic.
#[test]
fn size_accounting_matches_specs() {
    let mut net = plain_cnn(5, 2, PolicyKind::Dorefa, 0);
    // Mixed assignment: 8/4/2/fp across the four quantizable layers.
    let widths = [
        BitWidth::of(8),
        BitWidth::of(4),
        BitWidth::of(2),
        BitWidth::FP32,
    ];
    for (i, w) in widths.iter().enumerate() {
        let spec = net.quant_spec(i);
        net.set_quant_spec(i, spec.with_bits(*w, *w));
    }
    let profiles = layer_profiles(&mut net);
    let size = model_size(&profiles);
    let manual_bits: u64 = profiles
        .iter()
        .map(|p| p.weight_count as u64 * u64::from(p.weight_bits.bits()))
        .sum();
    assert_eq!(size.quantized_bits, manual_bits);
    assert_eq!(size.fp32_bits, 32 * size.param_count as u64);
}

/// Power accounting reacts to bit-width changes in the right direction.
#[test]
fn power_decreases_when_bits_decrease() {
    let mut net = plain_cnn(5, 2, PolicyKind::Pact, 1);
    let _ = net
        .forward(&Tensor::zeros(&[1, 3, 8, 8]), Mode::Eval)
        .unwrap();
    let model = MacEnergyModel::node_32nm();

    let p_fp = network_power(&model, &layer_profiles(&mut net), 1e4).total_mw;
    net.set_all_quant_specs(QuantSpec::new(
        PolicyKind::Pact,
        BitWidth::of(8),
        BitWidth::of(8),
    ));
    let p8 = network_power(&model, &layer_profiles(&mut net), 1e4).total_mw;
    net.set_all_quant_specs(QuantSpec::new(
        PolicyKind::Pact,
        BitWidth::of(2),
        BitWidth::of(2),
    ));
    let p2 = network_power(&model, &layer_profiles(&mut net), 1e4).total_mw;
    assert!(
        p_fp > p8 && p8 > p2,
        "power must fall with precision: {p_fp} {p8} {p2}"
    );
    assert!(
        p_fp / p2 > 20.0,
        "fp vs 2-bit should be an order of magnitude: {}",
        p_fp / p2
    );
}

/// Quantized forward passes produce finite outputs across specs mid-switch
/// (the exact operation CCQ's competition performs on a live network).
#[test]
fn spec_flipping_mid_inference_is_safe() {
    let mut net = plain_cnn(4, 2, PolicyKind::Pact, 2);
    let x = Tensor::zeros(&[2, 3, 8, 8]);
    let layers = net.quant_layer_count();
    for bits in [8u32, 4, 3, 2] {
        for i in 0..layers {
            let spec = net.quant_spec(i);
            net.set_quant_spec(i, spec.with_bits(BitWidth::of(bits), BitWidth::of(bits)));
            let y = net.forward(&x, Mode::Eval).unwrap();
            assert!(y.all_finite(), "bits={bits} layer={i}");
            net.set_quant_spec(i, spec);
        }
    }
}
