//! Differential deployment harness: packed execution ≡ fake-quant.
//!
//! For each of the three seed ResNet workloads, every searcher drives a
//! small CCQ descent to a final mixed-precision checkpoint; that
//! checkpoint is packed into a `CCQPACK` artifact, byte round-tripped,
//! and instantiated on a fresh network. The deployed network must then
//! agree with the fake-quant original:
//!
//! - **dequant execution** reproduces the fake-quant `Eval` forward
//!   bit-exactly — packing stores the exact grid codes and the decoding
//!   grid, so dequantization lands on the identical `f32` values;
//! - **integer execution** stays within [`INT_BOUND`]: `i8×i8→i32`
//!   accumulation with one `f32` rescale per layer only differs by
//!   accumulation rounding, but activation grids are dynamic (max-abs
//!   of the incoming batch), so a rounding-boundary input can flip one
//!   activation code and the flip compounds through depth.

use ccq_repro::ccq::{CcqConfig, CcqRunner, RecoveryMode, SearcherKind};
use ccq_repro::data::{synth_cifar, SynthCifarConfig};
use ccq_repro::infer::{arch, PackedModel};
use ccq_repro::models::{ModelConfig, ModelKind};
use ccq_repro::nn::checkpoint::Checkpoint;
use ccq_repro::nn::train::train_epoch;
use ccq_repro::nn::{Mode, PackedExec, Sgd};
use ccq_repro::quant::{BitLadder, PolicyKind};
use ccq_repro::tensor::{rng, Init, Rng64};

/// Pinned integer-execution agreement bound (max abs logit deviation).
/// Observed worst case across the three workloads and four searchers is
/// well under 5e-2; `bench_pack` pins the same bound.
const INT_BOUND: f32 = 1e-1;

const SEARCHERS: [SearcherKind; 4] = [
    SearcherKind::Hedge,
    SearcherKind::ZeroBit,
    SearcherKind::ReleqRl,
    SearcherKind::OneShot,
];

/// Runs every searcher to a final checkpoint on one workload and checks
/// the packed artifact against the fake-quant network.
fn packed_matches_fake_quant(kind: ModelKind, family: &str) {
    let data = synth_cifar(&SynthCifarConfig {
        classes: 4,
        samples_per_class: 8,
        image_size: 16,
        noise_std: 0.15,
        jitter: 0.2,
        monochrome: false,
        seed: 21,
    });
    let (train, val) = data.split_at(24);
    let (train_b, val_b) = (train.batches(8), val.batches(8));
    let cfg = ModelConfig {
        classes: 4,
        width: 2,
        policy: PolicyKind::MaxAbs,
        seed: 33,
    };
    let arch = arch::model_arch(family, cfg.classes, cfg.width);
    let mut x_rng = rng(55);
    let x = Init::Uniform { lo: -1.0, hi: 1.0 }.sample(&[2, 3, 16, 16], &mut x_rng);

    for searcher in SEARCHERS {
        let mut net = kind.build(&cfg);
        let mut opt = Sgd::new(0.05).momentum(0.9);
        let mut r = rng(61);
        train_epoch(&mut net, &train_b, &mut opt, &mut r).expect("pretraining");
        let ccq_cfg = CcqConfig {
            ladder: BitLadder::new(&[8, 4]).unwrap(),
            recovery: RecoveryMode::Manual { epochs: 1 },
            probe_val_batches: 1,
            max_steps: 2,
            searcher,
            seed: 77,
            ..CcqConfig::default()
        };
        let mut provider = |_: &mut Rng64| train_b.clone();
        CcqRunner::new(ccq_cfg)
            .run_with_sources(&mut net, &mut provider, &val_b)
            .expect("ccq descent");

        let fake = net.forward(&x, Mode::Eval).expect("fake-quant forward");
        let ckpt = Checkpoint::capture(&mut net);
        let model = PackedModel::from_checkpoint(&ckpt, &arch).expect("pack checkpoint");
        let round_tripped =
            PackedModel::from_bytes(&model.to_bytes()).expect("artifact bytes round-trip");
        assert_eq!(
            round_tripped, model,
            "{family}/{searcher:?}: lossy serialization"
        );

        let mut deployed = round_tripped.instantiate().expect("instantiate");
        let dequant = deployed
            .forward_packed(&x, PackedExec::Dequant)
            .expect("dequant forward");
        assert_eq!(
            fake.as_slice(),
            dequant.as_slice(),
            "{family}/{searcher:?}: packed dequant must be bit-exact"
        );
        let integer = deployed
            .forward_packed(&x, PackedExec::Integer)
            .expect("integer forward");
        let worst = fake
            .as_slice()
            .iter()
            .zip(integer.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            worst <= INT_BOUND,
            "{family}/{searcher:?}: integer deviation {worst:e} exceeds {INT_BOUND:e}"
        );
    }
}

#[test]
fn resnet20_packed_matches_fake_quant_for_every_searcher() {
    packed_matches_fake_quant(ModelKind::Resnet20, "resnet20");
}

#[test]
fn resnet18_packed_matches_fake_quant_for_every_searcher() {
    packed_matches_fake_quant(ModelKind::Resnet18, "resnet18");
}

#[test]
fn resnet50_style_packed_matches_fake_quant_for_every_searcher() {
    packed_matches_fake_quant(ModelKind::Resnet50, "resnet50");
}
