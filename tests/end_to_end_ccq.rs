//! Cross-crate integration: the full CCQ pipeline on a small CNN.

use ccq_repro::ccq::{CcqConfig, CcqRunner, LambdaSchedule, RecoveryMode, TraceEvent};
use ccq_repro::data::{synth_cifar, SynthCifarConfig};
use ccq_repro::models::plain_cnn;
use ccq_repro::nn::train::{evaluate, train_epoch};
use ccq_repro::nn::{Network, Sgd};
use ccq_repro::quant::{BitLadder, BitWidth, PolicyKind};
use ccq_repro::tensor::{rng, Rng64};

fn small_workload() -> (
    Network,
    Vec<ccq_repro::nn::train::Batch>,
    Vec<ccq_repro::nn::train::Batch>,
) {
    let data = synth_cifar(&SynthCifarConfig {
        classes: 4,
        samples_per_class: 24,
        image_size: 8,
        noise_std: 0.15,
        jitter: 0.2,
        monochrome: false,
        seed: 3,
    });
    let (train, val) = data.split_at(64);
    let (train_b, val_b) = (train.batches(16), val.batches(32));
    let mut net = plain_cnn(4, 2, PolicyKind::Pact, 5);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    let mut r = rng(6);
    for _ in 0..10 {
        train_epoch(&mut net, &train_b, &mut opt, &mut r).expect("pretraining");
    }
    (net, train_b, val_b)
}

#[test]
fn ccq_quantizes_a_cnn_without_collapse() {
    let (mut net, train_b, val_b) = small_workload();
    let baseline = evaluate(&mut net, &val_b).unwrap().accuracy;
    assert!(
        baseline > 0.5,
        "pretraining should beat chance, got {baseline}"
    );

    let cfg = CcqConfig {
        ladder: BitLadder::new(&[8, 4]).unwrap(),
        lambda: LambdaSchedule::constant(0.4),
        recovery: RecoveryMode::Adaptive {
            tolerance: 0.02,
            max_epochs: 4,
        },
        probe_val_batches: 1,
        seed: 7,
        ..CcqConfig::default()
    };
    let mut runner = CcqRunner::new(cfg);
    let mut provider = |_: &mut Rng64| train_b.clone();
    let report = runner
        .run_with_sources(&mut net, &mut provider, &val_b)
        .unwrap();

    // Every quantizable layer reached the 4-bit floor.
    for (label, w, a) in &report.bit_assignment {
        assert_eq!(*w, BitWidth::of(4), "{label}");
        assert_eq!(*a, BitWidth::of(4), "{label}");
    }
    assert!((report.final_compression - 8.0).abs() < 0.1);
    // Accuracy did not collapse to chance.
    assert!(
        report.final_accuracy > 0.4,
        "quantized accuracy collapsed: {}",
        report.final_accuracy
    );
    // The learning curve contains the sawtooth structure.
    let quant_events = report
        .trace
        .iter()
        .filter(|p| matches!(p.event, TraceEvent::QuantStep { .. }))
        .count();
    assert_eq!(quant_events, report.steps.len());
}

#[test]
fn ccq_trace_epochs_are_monotone() {
    let (mut net, train_b, val_b) = small_workload();
    let cfg = CcqConfig {
        ladder: BitLadder::new(&[8, 4]).unwrap(),
        recovery: RecoveryMode::Manual { epochs: 1 },
        probe_val_batches: 1,
        max_steps: 3,
        seed: 8,
        ..CcqConfig::default()
    };
    let mut runner = CcqRunner::new(cfg);
    let mut provider = |_: &mut Rng64| train_b.clone();
    let report = runner
        .run_with_sources(&mut net, &mut provider, &val_b)
        .unwrap();
    let mut last = 0;
    for p in &report.trace {
        assert!(p.epoch >= last, "epochs must not rewind");
        last = p.epoch;
    }
    assert_eq!(report.steps.len(), 3, "max_steps caps the schedule");
}

#[test]
fn identical_seeds_give_identical_reports() {
    let run = || {
        let (mut net, train_b, val_b) = small_workload();
        let cfg = CcqConfig {
            ladder: BitLadder::new(&[8, 4]).unwrap(),
            recovery: RecoveryMode::Manual { epochs: 1 },
            probe_val_batches: 1,
            max_steps: 2,
            seed: 99,
            ..CcqConfig::default()
        };
        let mut runner = CcqRunner::new(cfg);
        let mut provider = |_: &mut Rng64| train_b.clone();
        runner
            .run_with_sources(&mut net, &mut provider, &val_b)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.final_accuracy, b.final_accuracy);
    assert_eq!(a.bit_pattern(), b.bit_pattern());
    assert_eq!(a.trace_csv(), b.trace_csv());
}
