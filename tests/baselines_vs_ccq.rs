//! Cross-crate integration: the paper's headline comparisons at test scale.

use ccq_repro::ccq::baselines::{hawq_assign, one_shot_quantize, HawqConfig, OneShotConfig};
use ccq_repro::ccq::{CcqConfig, CcqRunner, LambdaSchedule, RecoveryMode};
use ccq_repro::data::{gaussian_blobs, BlobsConfig};
use ccq_repro::models::mlp;
use ccq_repro::nn::train::{train_epoch, Batch};
use ccq_repro::nn::{Network, Sgd};
use ccq_repro::quant::{BitLadder, BitWidth, PolicyKind};
use ccq_repro::tensor::{rng, Rng64};

fn trained(seed: u64) -> (Network, Vec<Batch>, Vec<Batch>) {
    let ds = gaussian_blobs(&BlobsConfig {
        classes: 4,
        dim: 8,
        samples_per_class: 64,
        std: 0.35,
        seed: 50,
    });
    let (train, val) = ds.split_at(192);
    let (train_b, val_b) = (train.batches(16), val.batches(32));
    let mut net = mlp(&[8, 16, 16, 4], PolicyKind::Pact, seed);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    let mut r = rng(seed ^ 1);
    for _ in 0..15 {
        train_epoch(&mut net, &train_b, &mut opt, &mut r).unwrap();
    }
    (net, train_b, val_b)
}

/// Table I's shape: gradual CCQ to the same fp-3b-fp pattern does at least
/// as well as one-shot (allowing a small tolerance for run-to-run noise on
/// this tiny task).
#[test]
fn gradual_matches_or_beats_one_shot_at_same_pattern() {
    let (mut one_shot_net, train_b, val_b) = trained(61);
    let layers = one_shot_net.quant_layer_count();
    let cfg = OneShotConfig {
        seed: 1,
        ..OneShotConfig::fp_mid_fp(layers, BitWidth::of(3), 4)
    };
    let one_shot = one_shot_quantize(&mut one_shot_net, &cfg, &train_b, &val_b).unwrap();

    let (mut grad_net, train_b2, val_b2) = trained(61);
    let mut targets = vec![BitWidth::of(3); layers];
    targets[0] = BitWidth::FP32;
    targets[layers - 1] = BitWidth::FP32;
    let ccq_cfg = CcqConfig {
        ladder: BitLadder::new(&[8, 6, 4, 3]).unwrap(),
        targets: Some(targets),
        lambda: LambdaSchedule::constant(0.3),
        recovery: RecoveryMode::Adaptive {
            tolerance: 0.01,
            max_epochs: 4,
        },
        probe_val_batches: 1,
        seed: 1,
        ..CcqConfig::default()
    };
    let mut runner = CcqRunner::new(ccq_cfg);
    let mut provider = |_: &mut Rng64| train_b2.clone();
    let gradual = runner
        .run_with_sources(&mut grad_net, &mut provider, &val_b2)
        .unwrap();

    assert_eq!(gradual.bit_assignment[0].1, BitWidth::FP32);
    assert_eq!(gradual.bit_assignment[1].1, BitWidth::of(3));
    assert!(
        gradual.final_accuracy >= one_shot.final_accuracy - 0.05,
        "gradual {} should not lose badly to one-shot {}",
        gradual.final_accuracy,
        one_shot.final_accuracy
    );
}

/// Table II's shape: both mixed-precision methods hit their compression
/// targets, and CCQ's degradation is bounded.
#[test]
fn mixed_precision_methods_hit_compression_targets() {
    let (mut hawq_net, train_b, val_b) = trained(62);
    let hawq_cfg = HawqConfig {
        target_compression: 7.0,
        fine_tune_epochs: 4,
        seed: 2,
        ..Default::default()
    };
    let hawq = hawq_assign(&mut hawq_net, &hawq_cfg, &train_b, &val_b).unwrap();
    assert!(hawq.compression >= 7.0);

    let (mut ccq_net, train_b2, val_b2) = trained(62);
    let ccq_cfg = CcqConfig {
        target_compression: Some(7.0),
        recovery: RecoveryMode::Adaptive {
            tolerance: 0.01,
            max_epochs: 4,
        },
        probe_val_batches: 1,
        seed: 2,
        ..CcqConfig::default()
    };
    let mut runner = CcqRunner::new(ccq_cfg);
    let mut provider = |_: &mut Rng64| train_b2.clone();
    let ccq = runner
        .run_with_sources(&mut ccq_net, &mut provider, &val_b2)
        .unwrap();
    assert!(ccq.final_compression >= 7.0);
    assert!(
        ccq.degradation() < 0.15,
        "CCQ degradation too large on an easy task: {}",
        ccq.degradation()
    );
}
