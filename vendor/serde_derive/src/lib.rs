//! No-op `#[derive(Serialize, Deserialize)]` backing the vendored
//! `serde` marker traits. Accepts (and ignores) `#[serde(...)]`
//! attributes so annotated types keep compiling.

use proc_macro::TokenStream;

/// Emits a blanket-free empty impl site: the vendored `serde` traits
/// are markers, so deriving produces no code. We cannot easily emit
/// `impl Serialize for T` without a full generics parser, and nothing
/// in the workspace bounds on the traits, so emitting nothing is both
/// sufficient and simplest.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// See [`derive_serialize`].
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
