//! Offline stand-in for the subset of `rayon` this workspace uses.
//!
//! Data-parallel iterators (`par_iter`, `par_chunks`, `par_chunks_mut`,
//! ranges) with `map`/`enumerate`/`for_each`/`collect`, plus [`scope`]
//! and a [`ThreadPoolBuilder`] whose pools only scope a thread-count
//! override. Unlike real rayon there is no persistent work-stealing
//! pool: each parallel call splits its input into at most
//! [`current_num_threads`] contiguous, order-preserving pieces and runs
//! them on `std::thread::scope` threads. A thread-local flag marks
//! worker threads so nested parallel calls degrade to sequential
//! execution instead of spawning unbounded threads.
//!
//! Determinism contract relied on by the workspace: splitting is purely
//! structural (contiguous pieces, results concatenated in input order),
//! so any `collect` returns items in exactly the order a sequential run
//! would produce, at every thread count.

use std::cell::Cell;

thread_local! {
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
    static POOL_OVERRIDE: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Number of worker threads parallel calls may use on this thread:
/// 1 inside a worker (nested calls run sequentially), otherwise the
/// innermost [`ThreadPool::install`] override, otherwise
/// `RAYON_NUM_THREADS`, otherwise `std::thread::available_parallelism`.
pub fn current_num_threads() -> usize {
    if IN_WORKER.with(Cell::get) {
        return 1;
    }
    if let Some(n) = POOL_OVERRIDE.with(Cell::get) {
        return n.max(1);
    }
    if let Ok(s) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = s.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Builder for a scoped thread-count override (mirrors rayon's API).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

/// Error type returned by [`ThreadPoolBuilder::build`]; construction
/// here cannot actually fail.
#[derive(Debug)]
pub struct ThreadPoolBuildError;

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

impl ThreadPoolBuilder {
    /// Creates a builder with no explicit thread count.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the number of threads `install` will expose; 0 means "use
    /// the environment default" as in real rayon.
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = if n == 0 { None } else { Some(n) };
        self
    }

    /// Builds the pool. Never fails in this stand-in.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// A "pool" that scopes a thread-count override for parallel calls made
/// inside [`ThreadPool::install`].
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread count governing every parallel
    /// call it makes, restoring the previous setting afterwards.
    pub fn install<R>(&self, op: impl FnOnce() -> R) -> R {
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_OVERRIDE.with(|c| c.set(self.0));
            }
        }
        let prev = POOL_OVERRIDE.with(Cell::get);
        let effective = self.num_threads.or(prev);
        POOL_OVERRIDE.with(|c| c.set(effective));
        let _restore = Restore(prev);
        op()
    }

    /// The thread count this pool exposes.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// Splittable data-parallel iterator. All combinators preserve input
/// order; `collect`/`for_each` run pieces on scoped OS threads.
pub trait ParallelIterator: Sized + Send {
    /// Item type produced by the iterator.
    type Item: Send;

    /// Exact number of items.
    fn len(&self) -> usize;

    /// True when the iterator yields no items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Splits into `[0, mid)` and `[mid, len)` pieces.
    fn split_at(self, mid: usize) -> (Self, Self);

    /// Drives the piece sequentially in input order.
    fn drive<F: FnMut(Self::Item)>(self, f: F);

    /// Maps each item through `f` (applied on worker threads).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send + Clone,
    {
        Map { base: self, f }
    }

    /// Pairs each item with its index in the unsplit input.
    fn enumerate(self) -> Enumerate<Self> {
        Enumerate {
            base: self,
            offset: 0,
        }
    }

    /// Consumes every item, in parallel across contiguous pieces.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send + Clone,
    {
        let pieces = split_even(self);
        run_pieces(pieces, |piece| piece.drive(f.clone()));
    }

    /// Collects into `C`, preserving sequential order exactly.
    fn collect<C: FromParallelIterator<Self::Item>>(self) -> C {
        let pieces = split_even(self);
        let total: usize = pieces.iter().map(ParallelIterator::len).sum();
        let per_piece = run_pieces(pieces, |piece| {
            let mut out = Vec::with_capacity(piece.len());
            piece.drive(|x| out.push(x));
            out
        });
        let mut flat = Vec::with_capacity(total);
        for v in per_piece {
            flat.extend(v);
        }
        C::from_ordered(flat)
    }
}

/// Splits `it` into at most `current_num_threads()` contiguous pieces
/// of near-equal length, in order.
fn split_even<I: ParallelIterator>(it: I) -> Vec<I> {
    let n = it.len();
    let threads = current_num_threads().min(n).max(1);
    let (base, rem) = (n / threads, n % threads);
    let mut pieces = Vec::with_capacity(threads);
    let mut rest = it;
    for i in 0..threads.saturating_sub(1) {
        let take = base + usize::from(i < rem);
        let (head, tail) = rest.split_at(take);
        pieces.push(head);
        rest = tail;
    }
    pieces.push(rest);
    pieces
}

/// Runs `op` over each piece — sequentially when only one piece (or
/// when already on a worker thread), otherwise one scoped thread per
/// piece — returning results in piece order.
fn run_pieces<I, R, F>(pieces: Vec<I>, op: F) -> Vec<R>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I) -> R + Sync + Send,
{
    if pieces.len() <= 1 || IN_WORKER.with(Cell::get) {
        return pieces.into_iter().map(op).collect();
    }
    let op = &op;
    std::thread::scope(|s| {
        let handles: Vec<_> = pieces
            .into_iter()
            .map(|piece| {
                s.spawn(move || {
                    IN_WORKER.with(|c| c.set(true));
                    op(piece)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rayon worker panicked"))
            .collect()
    })
}

/// Conversion from an ordered item vector (the tail of `collect`).
pub trait FromParallelIterator<T: Send>: Sized {
    /// Builds the collection from items already in sequential order.
    fn from_ordered(items: Vec<T>) -> Self;
}

impl<T: Send> FromParallelIterator<T> for Vec<T> {
    fn from_ordered(items: Vec<T>) -> Self {
        items
    }
}

impl<T: Send, E: Send> FromParallelIterator<Result<T, E>> for Result<Vec<T>, E> {
    fn from_ordered(items: Vec<Result<T, E>>) -> Self {
        items.into_iter().collect()
    }
}

/// `map` adapter (see [`ParallelIterator::map`]).
#[derive(Debug)]
pub struct Map<I, F> {
    base: I,
    f: F,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send + Clone,
{
    type Item = R;

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Map {
                base: l,
                f: self.f.clone(),
            },
            Map { base: r, f: self.f },
        )
    }

    fn drive<G: FnMut(Self::Item)>(self, mut g: G) {
        let f = self.f;
        self.base.drive(|x| g(f(x)));
    }
}

/// `enumerate` adapter carrying the split-invariant base index.
#[derive(Debug)]
pub struct Enumerate<I> {
    base: I,
    offset: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.base.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.base.split_at(mid);
        (
            Enumerate {
                base: l,
                offset: self.offset,
            },
            Enumerate {
                base: r,
                offset: self.offset + mid,
            },
        )
    }

    fn drive<G: FnMut(Self::Item)>(self, mut g: G) {
        let mut i = self.offset;
        self.base.drive(|x| {
            g((i, x));
            i += 1;
        });
    }
}

/// Parallel iterator over a `Range<usize>`.
#[derive(Debug)]
pub struct RangeIter {
    start: usize,
    end: usize,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn len(&self) -> usize {
        self.end - self.start
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let pivot = self.start + mid;
        (
            RangeIter {
                start: self.start,
                end: pivot,
            },
            RangeIter {
                start: pivot,
                end: self.end,
            },
        )
    }

    fn drive<G: FnMut(Self::Item)>(self, mut g: G) {
        for i in self.start..self.end {
            g(i);
        }
    }
}

/// Parallel iterator over `&[T]`.
#[derive(Debug)]
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(mid);
        (SliceIter { slice: l }, SliceIter { slice: r })
    }

    fn drive<G: FnMut(Self::Item)>(self, mut g: G) {
        for x in self.slice {
            g(x);
        }
    }
}

/// Parallel iterator over contiguous `&[T]` chunks.
#[derive(Debug)]
pub struct ChunksIter<'a, T> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for ChunksIter<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (
            ChunksIter {
                slice: l,
                size: self.size,
            },
            ChunksIter {
                slice: r,
                size: self.size,
            },
        )
    }

    fn drive<G: FnMut(Self::Item)>(self, mut g: G) {
        for c in self.slice.chunks(self.size) {
            g(c);
        }
    }
}

/// Parallel iterator over contiguous `&mut [T]` chunks.
#[derive(Debug)]
pub struct ChunksMutIter<'a, T> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMutIter<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }

    fn split_at(self, mid: usize) -> (Self, Self) {
        let at = (mid * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (
            ChunksMutIter {
                slice: l,
                size: self.size,
            },
            ChunksMutIter {
                slice: r,
                size: self.size,
            },
        )
    }

    fn drive<G: FnMut(Self::Item)>(self, mut g: G) {
        for c in self.slice.chunks_mut(self.size) {
            g(c);
        }
    }
}

/// Entry point mirroring rayon's `IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced.
    type Item: Send;
    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter {
            start: self.start,
            end: self.end,
        }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

impl<'a, T: Sync> IntoParallelIterator for &'a Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { slice: self }
    }
}

/// `par_iter` on shared slices/vecs (rayon's `IntoParallelRefIterator`).
pub trait IntoParallelRefIterator<'a> {
    /// Iterator type produced.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Item type produced.
    type Item: Send;
    /// Borrowing parallel iterator.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a, C: ?Sized + 'a> IntoParallelRefIterator<'a> for C
where
    &'a C: IntoParallelIterator<Item = &'a T>,
{
    type Iter = <&'a C as IntoParallelIterator>::Iter;
    type Item = &'a T;

    fn par_iter(&'a self) -> Self::Iter {
        self.into_par_iter()
    }
}

/// `par_chunks` on shared slices (rayon's `ParallelSlice`).
pub trait ParallelSlice<T: Sync> {
    /// Parallel iterator over `size`-element chunks.
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> ChunksIter<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksIter { slice: self, size }
    }
}

/// `par_chunks_mut` on mutable slices (rayon's `ParallelSliceMut`).
pub trait ParallelSliceMut<T: Send> {
    /// Parallel iterator over mutable `size`-element chunks.
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutIter<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMutIter<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMutIter { slice: self, size }
    }
}

/// Scope for structured task spawning, backed by `std::thread::scope`.
pub struct Scope<'s, 'env: 's> {
    inner: &'s std::thread::Scope<'s, 'env>,
}

impl<'s, 'env> Scope<'s, 'env> {
    /// Spawns `f` on a scoped worker thread. The worker is marked so
    /// parallel calls inside it run sequentially.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce(&Scope<'s, 'env>) + Send + 's,
    {
        let inner = self.inner;
        inner.spawn(move || {
            IN_WORKER.with(|c| c.set(true));
            let scope = Scope { inner };
            f(&scope);
        });
    }
}

/// Runs `op` with a [`Scope`] whose spawned tasks all finish before
/// `scope` returns (panics propagate).
pub fn scope<'env, F, R>(op: F) -> R
where
    F: for<'s> FnOnce(&Scope<'s, 'env>) -> R,
{
    std::thread::scope(|s| {
        let scope = Scope { inner: s };
        op(&scope)
    })
}

/// Glob-import surface matching `rayon::prelude`.
pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSlice,
        ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .unwrap()
            .install(f)
    }

    #[test]
    fn collect_preserves_order_at_every_thread_count() {
        let expect: Vec<usize> = (0..1000).map(|i| i * 3).collect();
        for t in [1, 2, 4, 8, 16] {
            let got: Vec<usize> =
                with_threads(t, || (0..1000).into_par_iter().map(|i| i * 3).collect());
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn chunks_mut_writes_disjoint_regions() {
        let mut v = vec![0u32; 103];
        with_threads(4, || {
            v.par_chunks_mut(10).enumerate().for_each(|(ci, chunk)| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = (ci * 10 + j) as u32;
                }
            });
        });
        let expect: Vec<u32> = (0..103).collect();
        assert_eq!(v, expect);
    }

    #[test]
    fn result_collect_short_circuits_to_err() {
        let r: Result<Vec<usize>, String> = with_threads(4, || {
            (0..100)
                .into_par_iter()
                .map(|i| {
                    if i == 57 {
                        Err(format!("bad {i}"))
                    } else {
                        Ok(i)
                    }
                })
                .collect()
        });
        assert_eq!(r.unwrap_err(), "bad 57");
        let ok: Result<Vec<usize>, String> =
            with_threads(4, || (0..10).into_par_iter().map(Ok).collect());
        assert_eq!(ok.unwrap(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallelism_is_sequential_in_workers() {
        let counts: Vec<usize> = with_threads(4, || {
            (0..8)
                .into_par_iter()
                .map(|_| current_num_threads())
                .collect()
        });
        // Inside workers nested calls must see exactly one thread. With a
        // single available piece the driver may run inline (not a worker),
        // so allow 1-or-outer but require every multi-piece run to be 1.
        assert!(counts.iter().all(|&c| c == 1 || c == 4), "{counts:?}");
    }

    #[test]
    fn install_scopes_and_restores_thread_count() {
        let outer = current_num_threads();
        with_threads(3, || {
            assert_eq!(current_num_threads(), 3);
            with_threads(2, || assert_eq!(current_num_threads(), 2));
            assert_eq!(current_num_threads(), 3);
        });
        assert_eq!(current_num_threads(), outer);
    }

    #[test]
    fn scope_joins_all_spawns() {
        let mut results = vec![0usize; 6];
        scope(|s| {
            for (i, slot) in results.iter_mut().enumerate() {
                s.spawn(move |_| *slot = i + 1);
            }
        });
        assert_eq!(results, vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    fn par_iter_over_slice_and_vec() {
        let v: Vec<i64> = (0..57).collect();
        let doubled: Vec<i64> = with_threads(4, || v.par_iter().map(|x| x * 2).collect());
        assert_eq!(doubled, (0..57).map(|x| x * 2).collect::<Vec<_>>());
        let chunk_sums: Vec<i64> = with_threads(2, || {
            v.par_chunks(10).map(|c| c.iter().sum::<i64>()).collect()
        });
        assert_eq!(
            chunk_sums,
            v.chunks(10)
                .map(|c| c.iter().sum::<i64>())
                .collect::<Vec<_>>()
        );
    }
}
