//! Offline stand-in for the subset of `rand` 0.8 this workspace uses.
//!
//! Implements [`Rng`]/[`RngCore`]/[`SeedableRng`], a seeded
//! [`rngs::StdRng`] backed by xoshiro256++, and
//! [`seq::SliceRandom::shuffle`]. The generated streams differ from
//! upstream `rand` (which never guaranteed stream stability across
//! versions either); everything in this workspace seeds explicitly and
//! only relies on determinism, not on specific values.
//!
//! # Example
//!
//! ```
//! use rand::{Rng, SeedableRng};
//!
//! let mut r = rand::rngs::StdRng::seed_from_u64(7);
//! let x: f32 = r.gen();
//! assert!((0.0..1.0).contains(&x));
//! assert_eq!(r.gen_range(3..4usize), 3);
//! ```

use std::ops::{Range, RangeInclusive};

/// Low-level source of random bits.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-facing sampling methods, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`
    /// (`[0, 1)` for floats, uniform bits for integers and `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range (`lo..hi` or `lo..=hi`).
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore> Rng for R {}

/// Construction of seeded generators.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (via SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable from their "standard" distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample from `rng`.
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 high bits -> [0, 1) with full f32 mantissa coverage.
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Range types usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let width = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % width;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let width = (hi as i128 - lo as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % width;
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let unit = <$t as Standard>::sample_standard(rng);
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Named generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's deterministic generator: xoshiro256++ seeded via
    /// SplitMix64. Small, fast, and statistically solid for simulation
    /// workloads (not cryptographic).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw 256-bit generator state (for crash-safe run-state
        /// checkpoints). Not part of upstream `rand`'s API: upstream never
        /// exposes generator internals, so callers that need resumable
        /// streams must pin this vendored stand-in.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`Self::state`],
        /// continuing the stream exactly where the capture left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            StdRng { s }
        }

        fn from_splitmix(mut state: u64) -> Self {
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_splitmix(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Slice helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// In-place random reordering of slices.
    pub trait SliceRandom {
        /// Shuffles the slice with a Fisher–Yates pass.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;
    use crate::seq::SliceRandom;

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(9);
        for _ in 0..37 {
            let _ = a.next_u64();
        }
        let snap = a.state();
        let ahead: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let mut b = StdRng::from_state(snap);
        let resumed: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(ahead, resumed);
    }

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn float_ranges_respected() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: f32 = r.gen();
            assert!((0.0..1.0).contains(&x));
            let y = r.gen_range(-2.0f32..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z = r.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&z));
        }
    }

    #[test]
    fn int_ranges_respected() {
        let mut r = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = r.gen_range(10..15usize);
            assert!((10..15).contains(&v));
            seen[v - 10] = true;
            let w = r.gen_range(-3i32..=3);
            assert!((-3..=3).contains(&w));
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn mean_is_centered() {
        let mut r = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| f64::from(r.gen::<f32>())).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = StdRng::seed_from_u64(6);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements should not shuffle to identity");
    }

    #[test]
    fn gen_bool_probability() {
        let mut r = StdRng::seed_from_u64(7);
        let hits = (0..10_000).filter(|_| r.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
    }
}
