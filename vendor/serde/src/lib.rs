//! Offline stand-in for the subset of `serde` this workspace uses.
//!
//! The workspace only ever *derives* `Serialize`/`Deserialize` to mark
//! types as wire-ready; nothing serializes through serde at runtime
//! (JSON artifacts are emitted by hand-rolled writers). So the traits
//! here are plain markers and the derives (feature `derive`) expand to
//! nothing. Swapping `[workspace.dependencies]` back to registry serde
//! requires no code changes at any call site.

/// Marker for types that registry serde could serialize.
pub trait Serialize {}

/// Marker for types that registry serde could deserialize.
pub trait Deserialize<'de>: Sized {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
