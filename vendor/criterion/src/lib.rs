//! Offline stand-in for the subset of `criterion` this workspace uses.
//!
//! A minimal wall-clock harness: each benchmark warms up once, then
//! runs until a per-bench time budget (`CCQ_BENCH_MS`, default 200 ms)
//! elapses, reporting mean ns/iter to stdout. No statistics, plots, or
//! saved baselines — but [`criterion_group!`]/[`criterion_main!`],
//! [`Criterion::bench_function`], groups, and
//! [`Bencher::iter`]/[`Bencher::iter_batched`] are source-compatible so
//! benches build unchanged against registry criterion.
//!
//! CLI behaviour matches what cargo needs: `--bench` is accepted and
//! ignored, `--test` switches to smoke mode (each routine runs once),
//! and the first free argument is a substring filter on bench names.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup; only a hint here.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs (the only mode this workspace uses).
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh input every iteration.
    PerIteration,
}

/// Timing collector handed to benchmark closures.
pub struct Bencher {
    smoke: bool,
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `routine` repeatedly until the budget elapses.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup / fault-in
        if self.smoke {
            self.total = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            let elapsed = start.elapsed();
            if (elapsed >= self.budget && iters >= 10) || iters >= 1_000_000_000 {
                self.total = elapsed;
                self.iters = iters;
                return;
            }
        }
    }

    /// Times `routine` on inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup()));
        if self.smoke {
            self.total = Duration::from_nanos(1);
            self.iters = 1;
            return;
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.budget || iters < 10 {
            let input = setup();
            let t = Instant::now();
            black_box(routine(input));
            total += t.elapsed();
            iters += 1;
            if iters >= 1_000_000_000 {
                break;
            }
        }
        self.total = total;
        self.iters = iters;
    }

    fn ns_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return f64::NAN;
        }
        self.total.as_nanos() as f64 / self.iters as f64
    }
}

/// Benchmark registry/driver (stand-in for criterion's `Criterion`).
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
    budget: Duration,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_ms = std::env::var("CCQ_BENCH_MS")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
            .unwrap_or(200);
        Criterion {
            filter: None,
            smoke: false,
            budget: Duration::from_millis(budget_ms.max(1)),
            ran: 0,
        }
    }
}

impl Criterion {
    /// Builds a driver from the process CLI arguments (see module docs).
    pub fn from_args() -> Self {
        let mut c = Criterion::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--bench" | "--nocapture" | "--quiet" | "-q" => {}
                "--test" => c.smoke = true,
                s if s.starts_with('-') => {} // ignore unknown flags (e.g. --save-baseline)
                s => c.filter = Some(s.to_string()),
            }
        }
        c
    }

    fn should_run(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.should_run(id) {
            return;
        }
        let mut b = Bencher {
            smoke: self.smoke,
            budget: self.budget,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        self.ran += 1;
        if self.smoke {
            println!("bench {id:<48} ok (smoke)");
        } else {
            let ns = b.ns_per_iter();
            println!("bench {:<48} {:>14} ({} iters)", id, format_ns(ns), b.iters);
        }
    }

    /// Registers and immediately runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let id = id.to_string();
        self.run_one(&id, f);
        self
    }

    /// Opens a named group; member ids are prefixed `group/name`.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Prints the run footer (called by [`criterion_main!`]).
    pub fn final_summary(&self) {
        println!("bench summary: {} benchmark(s) run", self.ran);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Registers and runs one member benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(self) {}
}

fn format_ns(ns: f64) -> String {
    if ns.is_nan() {
        "n/a".to_string()
    } else if ns >= 1e9 {
        format!("{:.3} s/iter", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms/iter", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us/iter", ns / 1e3)
    } else {
        format!("{ns:.1} ns/iter")
    }
}

/// Defines a function running the listed benchmark functions in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench_fn:path),+ $(,)?) => {
        fn $name(c: &mut $crate::Criterion) {
            $( $bench_fn(c); )+
        }
    };
}

/// Defines `main` driving the listed groups with CLI-derived settings.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_iterations() {
        let mut c = Criterion {
            filter: None,
            smoke: false,
            budget: Duration::from_millis(5),
            ran: 0,
        };
        let mut total = 0u64;
        c.bench_function("spin", |b| {
            b.iter(|| {
                total = total.wrapping_add(1);
                black_box(total)
            })
        });
        assert_eq!(c.ran, 1);
        assert!(total >= 10, "ran {total} iterations");
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("keep".to_string()),
            smoke: true,
            budget: Duration::from_millis(1),
            ran: 0,
        };
        let mut hit = false;
        c.bench_function("skipped_bench", |b| b.iter(|| ()));
        c.bench_function("keep_this", |b| {
            hit = true;
            b.iter(|| ())
        });
        assert!(hit);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn groups_prefix_and_batched_runs() {
        let mut c = Criterion {
            filter: None,
            smoke: true,
            budget: Duration::from_millis(1),
            ran: 0,
        };
        let mut g = c.benchmark_group("grp");
        g.bench_function("member", |b| {
            b.iter_batched(|| vec![1u8; 16], |v| v.len(), BatchSize::SmallInput)
        });
        g.finish();
        assert_eq!(c.ran, 1);
    }
}
