//! Offline stand-in for the subset of `proptest` this workspace uses.
//!
//! Provides the [`proptest!`] macro, range/tuple/vec/bool strategies
//! with [`strategy::Strategy::prop_map`], and the
//! `prop_assert*`/[`prop_assume!`]
//! macros. Compared to the registry crate the runner here is much
//! simpler: cases are generated from a deterministic per-test RNG
//! (seeded from the test's module path and name), there is **no input
//! shrinking**, and a failing case reports its case index so it can be
//! replayed by rerunning the test (generation is deterministic).
//! Call sites stay source-compatible with registry proptest.

/// Strategy trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A generator of random values for property tests.
    pub trait Strategy {
        /// Type of values this strategy produces.
        type Value;

        /// Draws one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transforms generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { base: self, f }
        }
    }

    /// `prop_map` adapter.
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let width = (self.end as i128 - self.start as i128) as u128;
                    let v = (rng.next_u64() as u128) % width;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let width = (hi as i128 - lo as i128) as u128 + 1;
                    let v = (rng.next_u64() as u128) % width;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    let v = self.start as f64 + (self.end as f64 - self.start as f64) * unit;
                    v as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                    (lo as f64 + (hi as f64 - lo as f64) * unit) as $t
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Inclusive length bounds for [`vec()`]; built from a `usize`
    /// (exact length) or a `Range<usize>` (half-open, as in proptest).
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length in `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// Generates vectors whose elements come from `elem` and whose
    /// length lies in `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = self.size.max - self.size.min;
            let len = if span == 0 {
                self.size.min
            } else {
                self.size.min + (rng.next_u64() as usize) % (span + 1)
            };
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy yielding uniformly random booleans.
    #[derive(Debug, Clone, Copy)]
    pub struct Any;

    /// The uniform boolean strategy.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Runner configuration, RNG, and case-level error type.
pub mod test_runner {
    /// Per-test configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered this input out; try another.
        Reject,
        /// `prop_assert*` failed with this message.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds the failure variant.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }
    }

    /// Deterministic generator: SplitMix64 seeded from the test's
    /// fully-qualified name and the case index, so every run of a test
    /// binary generates identical inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// RNG for case number `case` of the test named `name`.
        pub fn for_case(name: &str, case: u32) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng {
                state: h ^ (u64::from(case)).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Glob-import surface matching `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests. Accepts an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let test_name = concat!(module_path!(), "::", stringify!($name));
            let max_attempts = config.cases.saturating_mul(20).max(200);
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            while accepted < config.cases && attempts < max_attempts {
                let case = attempts;
                attempts += 1;
                let mut rng = $crate::test_runner::TestRng::for_case(test_name, case);
                $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::core::result::Result::Ok(())
                })();
                match outcome {
                    ::core::result::Result::Ok(()) => accepted += 1,
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {}
                    ::core::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!("{test_name} failed at case {case} (deterministic; rerun reproduces): {msg}");
                    }
                }
            }
            assert!(
                accepted >= config.cases,
                "{test_name}: only {accepted}/{} cases accepted after {attempts} attempts (prop_assume too strict)",
                config.cases,
            );
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body, failing the current
/// case (not panicking directly) so the runner can report the case
/// index.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        if !(left == right) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`: {}",
                left,
                right,
                format!($($fmt)+),
            )));
        }
    }};
}

/// Rejects the current case when `cond` is false; the runner draws a
/// fresh input instead of counting it.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges stay in bounds; assume/assert plumbing works.
        #[test]
        fn ranges_in_bounds((a, b) in (0usize..10, -5.0f32..5.0), flag in crate::bool::ANY) {
            prop_assert!(a < 10);
            prop_assert!((-5.0..5.0).contains(&b));
            prop_assume!(a != 3);
            prop_assert!(a != 3, "assume should have filtered a={}", a);
            let _ = flag;
        }

        #[test]
        fn vec_lengths(v in crate::collection::vec(0u32..100, 2..7)) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
        }

        #[test]
        fn exact_vec_and_map(v in crate::collection::vec(0.0f32..1.0, 12).prop_map(|v| v.len())) {
            prop_assert_eq!(v, 12);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::test_runner::TestRng;
        let s = (0u64..1000, crate::collection::vec(-1.0f32..1.0, 1..5));
        let a = s.generate(&mut TestRng::for_case("x", 7));
        let b = s.generate(&mut TestRng::for_case("x", 7));
        assert_eq!(a, b);
        let c = s.generate(&mut TestRng::for_case("x", 8));
        assert_ne!(a, c);
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(8))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
