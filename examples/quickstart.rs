//! Quickstart: run CCQ end-to-end on a small MLP in a few seconds.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

// Tables and CSVs go to stdout by design.
#![allow(clippy::print_stdout)]

use ccq_repro::ccq::{CcqConfig, CcqRunner, LambdaSchedule, RecoveryMode};
use ccq_repro::data::{gaussian_blobs, BlobsConfig};
use ccq_repro::models::mlp;
use ccq_repro::nn::train::{evaluate, train_epoch};
use ccq_repro::nn::Sgd;
use ccq_repro::quant::{BitLadder, PolicyKind};
use ccq_repro::tensor::{rng, Rng64};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A small classification task: four Gaussian blobs in 8 dimensions.
    let data = gaussian_blobs(&BlobsConfig {
        classes: 4,
        dim: 8,
        samples_per_class: 64,
        std: 0.4,
        seed: 0,
    });
    let (train, val) = data.split_at(192);
    let (train_b, val_b) = (train.batches(16), val.batches(32));

    // 2. Pre-train a full-precision baseline.
    let mut net = mlp(&[8, 24, 24, 4], PolicyKind::Pact, 1);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    let mut r = rng(2);
    for _ in 0..20 {
        train_epoch(&mut net, &train_b, &mut opt, &mut r)?;
    }
    let baseline = evaluate(&mut net, &val_b)?;
    println!("fp32 baseline: {:.1}% top-1", 100.0 * baseline.accuracy);

    // 3. Let CCQ walk the bit ladder: competition picks the layer whose
    //    quantization hurts least, collaboration recovers the accuracy.
    let cfg = CcqConfig {
        ladder: BitLadder::new(&[8, 6, 4, 3, 2])?,
        lambda: LambdaSchedule::linear(0.8, 0.2, 10),
        recovery: RecoveryMode::Adaptive {
            tolerance: 0.01,
            max_epochs: 6,
        },
        // Stop at ~8x compression (≈4-bit average) instead of descending
        // all the way to 2 bits.
        target_compression: Some(8.0),
        seed: 3,
        ..CcqConfig::default()
    };
    let mut runner = CcqRunner::new(cfg);
    let mut provider = |r: &mut Rng64| {
        let _ = r;
        train_b.clone()
    };
    let report = runner.run_with_sources(&mut net, &mut provider, &val_b)?;

    // 4. Inspect the learned mixed-precision assignment.
    println!("{report}");
    for (label, wbits, abits) in &report.bit_assignment {
        println!("  {label:<6} weights {wbits:>3}  activations {abits:>3}");
    }
    println!(
        "{} quantization steps, {:.2}x compression, {:.2} pts degradation",
        report.steps.len(),
        report.final_compression,
        100.0 * report.degradation()
    );
    Ok(())
}
