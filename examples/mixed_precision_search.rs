//! Mixed-precision search on a ResNet: the paper's intro workload.
//!
//! Trains a ResNet20-style network on SynthCIFAR, lets CCQ learn a
//! per-layer bit assignment to a 10x compression target, and then analyses
//! the result with the hardware model: model size, per-layer power, and
//! the first/last-layer power story of Fig. 5.
//!
//! ```sh
//! cargo run --release --example mixed_precision_search
//! ```
//!
//! The search autosaves its run state every quantization step; an
//! interrupted (or crashed) search continues bit-for-bit from the last
//! step boundary:
//!
//! ```sh
//! cargo run --release --example mixed_precision_search -- \
//!     --resume mixed_precision_search.ccqruns
//! ```
//!
//! `--searcher <hedge|zero-bit|releq|one-shot>` swaps the compete-phase
//! strategy (artifact files pick up the searcher name so runs don't
//! clobber each other), and `--assert-done` exits nonzero unless the
//! search reached its compression target — the suite's searcher gate:
//!
//! ```sh
//! cargo run --release --example mixed_precision_search -- \
//!     --searcher releq --assert-done
//! ```
//!
//! Either way the search streams its event log — baseline, per-round
//! probe losses, quantize decisions, recovery epochs — as JSON lines to
//! `mixed_precision_search.events.jsonl` through a [`JsonlSink`], and
//! fans the same stream into a [`MetricsSink`] whose Prometheus-style
//! exposition lands in `mixed_precision_search.metrics.txt`. Replay the
//! JSONL later with `cargo run -p ccq-bench --bin ccq-report`.

// Tables and CSVs go to stdout by design.
#![allow(clippy::print_stdout)]

use ccq_repro::ccq::{
    layer_profiles, render_probe_cache_stats, CcqConfig, CcqRunner, FanoutSink, JsonlSink,
    MetricsSink, RecoveryMode, SearcherKind,
};
use ccq_repro::data::{synth_cifar, Augment, SynthCifarConfig};
use ccq_repro::hw::{model_size, network_power, MacEnergyModel};
use ccq_repro::models::{resnet20, ModelConfig};
use ccq_repro::nn::train::{evaluate, train_epoch};
use ccq_repro::nn::Sgd;
use ccq_repro::quant::PolicyKind;
use ccq_repro::tensor::rng;
use std::path::PathBuf;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let mut resume: Option<PathBuf> = None;
    let mut searcher = SearcherKind::Hedge;
    let mut assert_done = false;
    while let Some(a) = args.next() {
        match a.as_str() {
            "--resume" => {
                let path = args.next().ok_or("--resume needs a run-state path")?;
                resume = Some(PathBuf::from(path));
            }
            "--searcher" => {
                let kind = args.next().ok_or("--searcher needs a strategy name")?;
                searcher = SearcherKind::parse(&kind)?;
            }
            "--assert-done" => assert_done = true,
            other => return Err(format!("unknown argument: {other}").into()),
        }
    }
    // Artifacts are per-searcher so a gate can run every strategy in one
    // directory without the runs clobbering each other's autosaves.
    let stem = match searcher {
        SearcherKind::Hedge => "mixed_precision_search".to_string(),
        other => format!("mixed_precision_search.{other}"),
    };

    // A compact workload so the example finishes in about a minute.
    let data = synth_cifar(&SynthCifarConfig {
        classes: 10,
        samples_per_class: 40,
        image_size: 16,
        noise_std: 0.35,
        jitter: 0.4,
        monochrome: true,
        seed: 0,
    });
    let (train, val) = data.split_at(320);
    let mut net = resnet20(&ModelConfig {
        classes: 10,
        width: 4,
        policy: PolicyKind::Pact,
        seed: 0,
    });

    if resume.is_none() {
        // Pre-train the fp32 baseline. A resumed run skips this: the run
        // state restores the (already quantized) weights directly.
        let mut opt = Sgd::new(0.05).momentum(0.9).weight_decay(5e-4);
        let mut r = rng(1);
        let aug = Augment::standard();
        for _ in 0..24 {
            let batches = train.augmented_batches(32, &aug, &mut r);
            train_epoch(&mut net, &batches, &mut opt, &mut r)?;
        }
        let val_b = val.batches(32);
        let baseline = evaluate(&mut net, &val_b)?;
        println!("fp32 baseline: {:.1}% top-1", 100.0 * baseline.accuracy);
    }

    // CCQ search to a 10x compression target, with crash-safe autosaves
    // at every step boundary.
    let target_compression = 10.0;
    let cfg = CcqConfig {
        target_compression: Some(target_compression),
        recovery: RecoveryMode::Adaptive {
            tolerance: 0.02,
            max_epochs: 4,
        },
        seed: 2,
        searcher,
        autosave: Some(PathBuf::from(format!("{stem}.ccqruns"))),
        ..CcqConfig::default()
    };
    let mut runner = CcqRunner::new(cfg);

    // Stream the descent's event log as JSON lines; each line is one
    // structured event (probe round, quantize decision, recovery epoch…).
    // The same stream fans out into a metrics sink on the wall clock, so
    // the run also leaves a Prometheus-style exposition behind.
    let events_path = format!("{stem}.events.jsonl");
    let metrics_path = format!("{stem}.metrics.txt");
    let mut events = JsonlSink::new(std::io::BufWriter::new(std::fs::File::create(
        &events_path,
    )?));
    let mut metrics = MetricsSink::wall();
    let report = {
        let mut fan = FanoutSink::new().with(&mut events).with(&mut metrics);
        match &resume {
            Some(path) => {
                println!("resuming from {}", path.display());
                runner.resume_with_sink(path, &mut net, &train, &val, &mut fan)?
            }
            None => runner.run_with_sink(&mut net, &train, &val, &mut fan)?,
        }
    };
    if let Some(err) = events.io_error() {
        eprintln!("warning: event log truncated: {err}");
    }
    use std::io::Write as _;
    events.into_inner().flush()?;
    // Fold the run's probe-cache accounting into the exposition and
    // leave a sidecar behind so `ccq-report --probe-cache` can show how
    // much forward work incremental probe evaluation saved offline.
    let cache_path = format!("{stem}.probe_cache.json");
    let mut registry = metrics.into_registry();
    registry.record_probe_cache(runner.probe_cache_stats());
    std::fs::write(&metrics_path, registry.render_text())?;
    std::fs::write(
        &cache_path,
        render_probe_cache_stats(runner.probe_cache_stats()),
    )?;
    println!("{report}");
    println!("{}", runner.probe_cache_stats());
    println!("event log: {events_path}");
    println!("metrics exposition: {metrics_path}");
    println!("probe-cache sidecar: {cache_path}");

    // Hardware analysis of the learned assignment.
    let profiles = layer_profiles(&mut net);
    let size = model_size(&profiles);
    println!(
        "weights: {} params, {:.1} KiB quantized (vs {:.1} KiB fp32), {:.2}x",
        size.param_count,
        size.quantized_bits as f64 / 8192.0,
        size.fp32_bits as f64 / 8192.0,
        size.compression
    );
    let power = network_power(&MacEnergyModel::node_32nm(), &profiles, 1.0e4);
    println!(
        "iso-throughput power: {:.3} mW total ({:.3} mW in first+last layers, {:.0}% share)",
        power.total_mw,
        power.first_last_mw,
        100.0 * power.first_last_mw / power.total_mw.max(1e-12)
    );
    let mut top: Vec<_> = power.layers.iter().collect();
    top.sort_by(|a, b| b.power_mw.total_cmp(&a.power_mw));
    println!("hottest layers:");
    for l in top.iter().take(3) {
        println!(
            "  {:<22} {:.4} mW ({} MACs/inference)",
            l.label, l.power_mw, l.macs
        );
    }

    // `--assert-done` turns the run into a gate: exit nonzero unless the
    // search actually reached its compression target (mirrors ccq-serve's
    // `status --assert-done` contract).
    if assert_done && report.final_compression < target_compression {
        return Err(format!(
            "searcher {searcher} stopped at {:.2}x, short of the {target_compression:.0}x target",
            report.final_compression
        )
        .into());
    }
    Ok(())
}
