//! Compare quantization policies as *policies* — the property CCQ is
//! agnostic over.
//!
//! Quantizes the same trained network one-shot with every policy at
//! several bit widths and reports weight quantization error (SQNR) and
//! validation accuracy, showing why the paper picks PACT as its default
//! (learned clipping adapts to bit-width changes).
//!
//! ```sh
//! cargo run --release --example policy_comparison
//! ```

// Tables and CSVs go to stdout by design.
#![allow(clippy::print_stdout)]

use ccq_repro::data::{gaussian_blobs, BlobsConfig};
use ccq_repro::models::mlp;
use ccq_repro::nn::train::{evaluate, train_epoch};
use ccq_repro::nn::Sgd;
use ccq_repro::quant::{quantization_sqnr_db, BitWidth, LayerQuant, PolicyKind, QuantSpec};
use ccq_repro::tensor::{rng, Init};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: pure kernel comparison — SQNR of each policy's weight
    // quantizer on a Gaussian weight tensor.
    let w = Init::Normal {
        mean: 0.0,
        std: 0.5,
    }
    .sample(&[4096], &mut rng(0));
    println!("weight-quantizer SQNR (dB) on N(0, 0.5) weights:");
    println!("{:<14} {:>6} {:>6} {:>6}", "policy", "2b", "4b", "8b");
    for policy in PolicyKind::ALL {
        let mut row = format!("{policy:<14}");
        for bits in [2u32, 4, 8] {
            let lq = LayerQuant::new(QuantSpec::new(policy, BitWidth::of(bits), BitWidth::FP32));
            let q = lq.quantize_weights(&w);
            row.push_str(&format!(" {:>6.1}", quantization_sqnr_db(&w, &q)));
        }
        println!("{row}");
    }

    // Part 2: end-to-end — accuracy of the same trained MLP under each
    // policy at 4 and 2 bits (weights and activations), no fine-tuning.
    let data = gaussian_blobs(&BlobsConfig {
        classes: 4,
        dim: 8,
        samples_per_class: 64,
        std: 0.4,
        seed: 7,
    });
    let (train, val) = data.split_at(192);
    let (train_b, val_b) = (train.batches(16), val.batches(32));
    let mut source = mlp(&[8, 24, 4], PolicyKind::Pact, 3);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    let mut r = rng(4);
    for _ in 0..20 {
        train_epoch(&mut source, &train_b, &mut opt, &mut r)?;
    }
    let state = source.snapshot();

    println!("\npost-training accuracy of one trained MLP, per policy (no fine-tuning):");
    println!(
        "{:<14} {:>8} {:>8} {:>8}",
        "policy", "fp32", "4b/4b", "2b/2b"
    );
    for policy in PolicyKind::ALL {
        let mut row = format!("{policy:<14}");
        for bits in [32u32, 4, 2] {
            // A structurally identical network carrying the same trained
            // weights, with this policy installed.
            let mut target = mlp(&[8, 24, 4], policy, 3);
            target.restore(&state)?;
            let width = if bits == 32 {
                BitWidth::FP32
            } else {
                BitWidth::of(bits)
            };
            target.set_all_quant_specs(QuantSpec::new(policy, width, width));
            let acc = evaluate(&mut target, &val_b)?.accuracy;
            row.push_str(&format!(" {:>7.1}%", 100.0 * acc));
        }
        println!("{row}");
    }
    println!("\n(PACT's learned clipping keeps accuracy at low bits — the reason");
    println!(" the paper uses it as CCQ's default policy.)");
    Ok(())
}
