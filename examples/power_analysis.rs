//! Design-space exploration with the MAC power model: what does each bit
//! of precision cost in silicon?
//!
//! Sweeps operand widths for a single MAC unit at several technology
//! nodes, then breaks a ResNet down layer by layer under three deployment
//! configurations — the accelerator-design view behind the paper's Fig. 5.
//!
//! ```sh
//! cargo run --release --example power_analysis
//! ```

// Tables and CSVs go to stdout by design.
#![allow(clippy::print_stdout)]

use ccq_repro::ccq::layer_profiles;
use ccq_repro::hw::{model_size, network_power, LayerProfile, MacEnergyModel};
use ccq_repro::models::{resnet18, ModelConfig};
use ccq_repro::nn::Mode;
use ccq_repro::quant::{BitWidth, PolicyKind};
use ccq_repro::tensor::Tensor;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Part 1: per-MAC energy across operand widths and nodes.
    println!("energy per MAC (pJ):");
    println!(
        "{:<8} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "node", "2b", "4b", "8b", "16b", "fp32"
    );
    for node in [45.0, 32.0, 16.0] {
        let m = MacEnergyModel::at_node(node);
        let mut row = format!("{:<8}", format!("{node}nm"));
        for bits in [2u32, 4, 8, 16] {
            row.push_str(&format!(
                " {:>8.4}",
                m.energy_pj(BitWidth::of(bits), BitWidth::of(bits))
            ));
        }
        row.push_str(&format!(
            " {:>8.4}",
            m.energy_pj(BitWidth::FP32, BitWidth::FP32)
        ));
        println!("{row}");
    }

    // Part 2: layer-by-layer power of a ResNet18-style network under three
    // deployment configurations at iso-throughput.
    let mut net = resnet18(&ModelConfig {
        classes: 10,
        width: 4,
        policy: PolicyKind::Pact,
        seed: 0,
    });
    let _ = net.forward(&Tensor::zeros(&[1, 3, 16, 16]), Mode::Eval)?;
    let base = layer_profiles(&mut net);
    let model = MacEnergyModel::node_32nm();
    let throughput = 1.0e4;

    let apply = |bits_of: &dyn Fn(usize, usize) -> BitWidth| -> Vec<LayerProfile> {
        let n = base.len();
        base.iter()
            .enumerate()
            .map(|(i, p)| {
                let b = bits_of(i, n);
                LayerProfile {
                    weight_bits: b,
                    act_bits: b,
                    ..p.clone()
                }
            })
            .collect()
    };
    let configs: Vec<(&str, Vec<LayerProfile>)> = vec![
        ("all fp32", apply(&|_, _| BitWidth::FP32)),
        (
            "fp-4b-fp",
            apply(&|i, n| {
                if i == 0 || i + 1 == n {
                    BitWidth::FP32
                } else {
                    BitWidth::of(4)
                }
            }),
        ),
        (
            "fully quantized 6/4/6",
            apply(&|i, n| {
                if i == 0 || i + 1 == n {
                    BitWidth::of(6)
                } else {
                    BitWidth::of(4)
                }
            }),
        ),
    ];

    for (name, profiles) in &configs {
        let p = network_power(&model, profiles, throughput);
        let s = model_size(profiles);
        println!(
            "\n{name}: {:.3} mW total, {:.2}x weight compression",
            p.total_mw, s.compression
        );
        for l in p.layers.iter().take(2) {
            println!("  {:<18} {:>10.5} mW", l.label, l.power_mw);
        }
        println!("  ...");
        if let Some(l) = p.layers.last() {
            println!("  {:<18} {:>10.5} mW", l.label, l.power_mw);
        }
        println!(
            "  first+last share: {:.1}%",
            100.0 * p.first_last_mw / p.total_mw.max(1e-12)
        );
    }
    Ok(())
}
