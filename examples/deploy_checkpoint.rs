//! The deployment path end-to-end: quantize with CCQ, checkpoint to disk,
//! reload into a fresh network, validate with true integer arithmetic,
//! and produce the silicon budget (energy/inference, MAC area).
//!
//! ```sh
//! cargo run --release --example deploy_checkpoint
//! ```

// Tables and CSVs go to stdout by design.
#![allow(clippy::print_stdout)]

use ccq_repro::ccq::{layer_profiles, CcqConfig, CcqRunner, RecoveryMode};
use ccq_repro::data::{gaussian_blobs, BlobsConfig};
use ccq_repro::hw::{inference_report, model_size, MacEnergyModel};
use ccq_repro::models::mlp;
use ccq_repro::nn::checkpoint::Checkpoint;
use ccq_repro::nn::integer::{int_linear, QuantizedTensor};
use ccq_repro::nn::train::{evaluate, train_epoch};
use ccq_repro::nn::{Mode, Sgd};
use ccq_repro::quant::{BitLadder, PolicyKind};
use ccq_repro::tensor::{rng, Init, Rng64};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train a baseline and let CCQ pick a mixed-precision assignment.
    // MaxAbs is the policy whose fake-quant semantics map 1:1 onto
    // integer hardware, so it is the deployment-oriented choice here.
    let data = gaussian_blobs(&BlobsConfig {
        classes: 4,
        dim: 8,
        samples_per_class: 64,
        std: 0.4,
        seed: 20,
    });
    let (train, val) = data.split_at(192);
    let (train_b, val_b) = (train.batches(16), val.batches(32));
    let mut net = mlp(&[8, 24, 4], PolicyKind::MaxAbs, 21);
    let mut opt = Sgd::new(0.05).momentum(0.9);
    let mut r = rng(22);
    for _ in 0..20 {
        train_epoch(&mut net, &train_b, &mut opt, &mut r)?;
    }
    let mut runner = CcqRunner::new(CcqConfig {
        ladder: BitLadder::new(&[8, 6, 4, 3])?,
        target_compression: Some(7.0),
        recovery: RecoveryMode::Adaptive {
            tolerance: 0.01,
            max_epochs: 5,
        },
        seed: 23,
        ..CcqConfig::default()
    });
    let mut provider = |_: &mut Rng64| train_b.clone();
    let report = runner.run_with_sources(&mut net, &mut provider, &val_b)?;
    println!("{report}");

    // Checkpoint to disk (atomic: tmp + fsync + rename + dir fsync, so a
    // crash mid-save never leaves a torn file) and reload into a fresh
    // network.
    let path = std::env::temp_dir().join("ccq_deploy_example.ckpt");
    let ckpt = Checkpoint::capture(&mut net);
    ckpt.save_atomic(&path)?;
    let loaded = Checkpoint::load_file(&path)?;
    let mut deployed = mlp(&[8, 24, 4], PolicyKind::MaxAbs, 0);
    loaded.apply(&mut deployed)?;
    let acc = evaluate(&mut deployed, &val_b)?;
    println!(
        "reloaded from {} ({} state tensors): {:.1}% top-1",
        path.display(),
        loaded.tensor_count(),
        100.0 * acc.accuracy
    );

    // Validate fake-quant against true integer execution on one layer.
    let spec = deployed.quant_spec(0);
    let x = Init::Uniform { lo: 0.0, hi: 1.0 }.sample(&[4, 8], &mut r);
    let mut max_err = 0.0f32;
    deployed.visit_quant(&mut |h| {
        if h.label == "fc0" {
            let wb = spec.weight_bits.bits().min(8);
            let qw = QuantizedTensor::from_tensor(&h.weight.value, wb);
            let qx = QuantizedTensor::from_tensor(&x, wb);
            // ccq-lint: allow(panic-surface) — example: aborting with context on a shape mismatch is the intended UX
            let y_int = int_linear(&qx, &qw, None).expect("int path");
            let wq = h.quant.quantize_weights(&h.weight.value);
            // Compare against the fake-quant product at the same widths.
            let y_fake =
                ccq_repro::tensor::ops::matmul_a_bt(&qx.dequantize(), &wq).expect("fake path"); // ccq-lint: allow(panic-surface) — example: aborting with context on a shape mismatch is the intended UX
            for (a, b) in y_int.as_slice().iter().zip(y_fake.as_slice()) {
                max_err = max_err.max((a - b).abs());
            }
        }
    });
    println!("fake-quant vs integer execution max |Δ| on fc0: {max_err:.2e}");

    // Silicon budget of the deployed assignment.
    let _ = deployed.forward(&x, Mode::Eval)?; // populate MAC counts
    let profiles = layer_profiles(&mut deployed);
    let size = model_size(&profiles);
    let inf = inference_report(&MacEnergyModel::node_32nm(), &profiles);
    println!(
        "deployed: {:.2}x weight compression, {} MACs/inference, {:.3} nJ/inference, {:.4} mm2 MAC area",
        size.compression, inf.total_macs, inf.energy_nj, inf.mac_area_mm2
    );
    std::fs::remove_file(&path).ok();
    Ok(())
}
