#!/bin/bash
# Gate (tests, serial-build tests, clippy), then regenerate every table
# and figure of the paper into results/, plus the parallel bench snapshot.
set -x
cd /root/repo
mkdir -p results

# --- lint gate first (cheapest): ccq-lint enforces the per-file
# invariants (determinism, panic-surface, no-unsafe, float-eq,
# feature-hygiene, durability, concurrency) plus the cross-file
# wire-drift and stale-waiver checks; any finding fails the suite
# (see DESIGN.md §10/§16). The JSON diagnostics are archived and must
# be byte-identical under both build configurations ---
cargo run -q -p ccq-lint -- --format json > results/lint.json 2> results/lint.log || exit 1
cargo run -q -p ccq-lint --no-default-features -- --format json > results/lint_serial.json 2>> results/lint.log || exit 1
cmp results/lint.json results/lint_serial.json || exit 1

# --- seeded-drift smoke: renaming one emitted JSON key in a scratch
# copy of the event emitter/decoder pair must trip wire-drift (exit
# nonzero, diagnostics on both sides); proves the cross-file pass has
# teeth, not just a clean bill on HEAD ---
DRIFT=results/drift_smoke
rm -rf "$DRIFT"
mkdir -p "$DRIFT/crates/core/src"
cp crates/core/src/event.rs crates/core/src/replay.rs "$DRIFT/crates/core/src/"
sed -i 's/\\"valley_accuracy\\":/\\"valley_acc\\":/' "$DRIFT/crates/core/src/event.rs"
if cargo run -q -p ccq-lint -- --format json "$DRIFT" > results/drift_smoke.json 2>> results/lint.log; then
  echo "seeded wire drift was NOT detected" >> results/lint.log
  exit 1
fi
grep -q '"rule": "wire-drift"' results/drift_smoke.json || exit 1
grep -q 'valley_acc' results/drift_smoke.json || exit 1
rm -rf "$DRIFT"

# --- gates: both feature configurations must pass, lints are errors,
# formatting is canonical, rustdoc builds warning-free (the workspace
# test run includes ccq-lint's own fixture + self-clean tests) ---
cargo test --workspace -q 2> results/test.log || exit 1
cargo test --workspace -q --no-default-features 2> results/test_serial.log || exit 1
cargo clippy --workspace --all-targets -- -D warnings 2> results/clippy.log || exit 1
cargo fmt --all --check > results/fmt.log 2>&1 || exit 1
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps 2> results/doc.log || exit 1

# --- fault gates: the injection harness must pass on the serial build
# too, and interrupted+resumed must equal uninterrupted bit-for-bit ---
cargo test -q -p ccq --no-default-features --features fault-inject 2> results/test_fault_serial.log || exit 1
cargo test -q -p ccq --test resume_determinism --test guarded_descent 2> results/test_fault.log || exit 1

# --- metrics gate: the golden-trace suite pins the observed run — the
# JSONL trace, the Prometheus-style exposition, and the ccq-report
# summary must be byte-identical to the blessed goldens on the parallel
# AND serial builds (same trajectory, same bytes, any thread count) ---
cargo test -q -p ccq --test golden_trace 2> results/metrics.log || exit 1
cargo test -q -p ccq --test golden_trace --no-default-features 2>> results/metrics.log || exit 1

# --- serve gate: crash-safe daemon smoke — drain two jobs in a
# reference spool, run the identical queue in a second spool whose
# daemon is SIGKILLed mid-run, restart it with --drain, and require the
# recovered artifacts (RunState, event JSONL, report) to be
# byte-identical to the uninterrupted reference (events normalized for
# the spool root embedded in autosave paths; see DESIGN.md §14). The
# deployable CCQPACK artifact is part of that contract: a resumed run
# must pack byte-identical bytes ---
cargo build --release -p ccq-serve 2> results/build_serve.log || exit 1
SERVE=target/release/ccq-serve
serve_spec() { # $1 = job name, $2 = seed offset
  cat <<EOF
ccq-job v1
name = $1
model = mlp:16x48x48x6
policy = pact
model_seed = $((11 + $2))
data = blobs:6x16x192
data_std = 0.4
data_seed = $((31 + $2))
split = 864
pretrain_epochs = 60
pretrain_lr = 0.05
pretrain_momentum = 0.9
pretrain_seed = $((7 + $2))
batch_size = 16
seed = $((13 + $2))
gamma = 0.5
ladder = 8,6,4,2
probe_rounds = 3
probe_val_batches = 0
lambda = 0.3
recovery = manual:3
guard = quarantine:2
lr = 0.02
max_steps = 14
target_compression = none
EOF
}
rm -rf results/serve_ref results/serve_kill
for SPOOL in results/serve_ref results/serve_kill; do
  $SERVE init "$SPOOL" > /dev/null || exit 1
  serve_spec smoke-a 0 | $SERVE enqueue "$SPOOL" - > /dev/null || exit 1
  serve_spec smoke-b 5 | $SERVE enqueue "$SPOOL" - > /dev/null || exit 1
done
$SERVE run results/serve_ref --workers 2 --drain > results/serve.log 2>&1 || exit 1
$SERVE status results/serve_ref --assert-done 2 >> results/serve.log 2>&1 || exit 1
$SERVE run results/serve_kill --workers 2 >> results/serve.log 2>&1 &
SERVE_PID=$!
sleep 1.5
kill -9 "$SERVE_PID" 2>/dev/null
wait "$SERVE_PID" 2>/dev/null
$SERVE run results/serve_kill --workers 2 --drain >> results/serve.log 2>&1 || exit 1
$SERVE status results/serve_kill --assert-done 2 >> results/serve.log 2>&1 || exit 1
for id in smoke-a smoke-b; do
  cmp "results/serve_ref/done/$id.ccqruns" "results/serve_kill/done/$id.ccqruns" || exit 1
  cmp "results/serve_ref/done/$id.report.txt" "results/serve_kill/done/$id.report.txt" || exit 1
  cmp "results/serve_ref/done/$id.ccqpack" "results/serve_kill/done/$id.ccqpack" || exit 1
  sed 's|results/serve_ref|<spool>|g' "results/serve_ref/done/$id.events.jsonl" > "results/serve_events_ref_$id.norm"
  sed 's|results/serve_kill|<spool>|g' "results/serve_kill/done/$id.events.jsonl" > "results/serve_events_kill_$id.norm"
  cmp "results/serve_events_ref_$id.norm" "results/serve_events_kill_$id.norm" || exit 1
done

# --- searcher gate: the intro workload must reach its 10x compression
# target under every compete-phase strategy; --assert-done makes each
# run exit nonzero when the search stops short (see DESIGN.md §15) ---
cargo build --release --example mixed_precision_search 2> results/build_example.log || exit 1
for S in hedge zero-bit releq one-shot; do
  target/release/examples/mixed_precision_search --searcher "$S" --assert-done \
    > "results/search_$S.log" 2>&1 || exit 1
done

# --- bench-smoke gate: the snapshot benchmarks must run at one rep on
# the serial AND parallel builds, write parseable JSON, incremental
# probing must never lose to full-forward probing, and packed execution
# must stay bit-exact with >=2x compression (bench_simd and bench_pack
# --smoke self-check their snapshots and enforce their floors) ---
cargo build --release -p ccq-bench --no-default-features 2> results/build_serial.log || exit 1
CCQ_BENCH_REPS=1 target/release/bench_parallel results/bench_parallel_smoke_serial.json > /dev/null 2> results/bench_smoke_serial.log || exit 1
test -s results/bench_parallel_smoke_serial.json || exit 1
target/release/bench_simd --smoke results/bench_simd_smoke_serial.json > /dev/null 2>> results/bench_smoke_serial.log || exit 1
target/release/bench_pack --smoke results/bench_pack_smoke_serial.json > /dev/null 2>> results/bench_smoke_serial.log || exit 1
cargo build --release -p ccq-bench 2> results/build.log || exit 1
CCQ_BENCH_REPS=1 target/release/bench_parallel results/bench_parallel_smoke.json > /dev/null 2> results/bench_smoke.log || exit 1
test -s results/bench_parallel_smoke.json || exit 1
target/release/bench_simd --smoke results/bench_simd_smoke.json > /dev/null 2>> results/bench_smoke.log || exit 1
target/release/bench_pack --smoke results/bench_pack_smoke.json > /dev/null 2>> results/bench_smoke.log || exit 1
# the packed artifacts — the bench demo and a daemon job's sidecar —
# must load and summarize through the deploy-side reader
target/release/ccq-report --packed results/demo.ccqpack > results/packed_report.txt 2>> results/bench_smoke.log || exit 1
target/release/ccq-report --packed results/serve_ref/done/smoke-a.ccqpack >> results/packed_report.txt 2>> results/bench_smoke.log || exit 1
grep -c '^CCQPACK ' results/packed_report.txt | grep -qx 2 || exit 1

# --- experiment harness ---
time target/release/fig5_power > results/fig5_power.csv 2> results/fig5_power.log
time target/release/fig4_lr > results/fig4_lr.csv 2> results/fig4_lr.log
time target/release/fig2_curve > results/fig2_curve.csv 2> results/fig2_curve.log
time target/release/fig3_recovery > results/fig3_recovery.csv 2> results/fig3_recovery.log
time target/release/fig1_lambda > results/fig1_lambda.csv 2> results/fig1_lambda.log
time target/release/table1 > results/table1.csv 2> results/table1.log
time target/release/ablations > results/ablations.csv 2> results/ablations.log
time target/release/table2 > results/table2.csv 2> results/table2.log
time target/release/bench_parallel BENCH_parallel.json 2> results/bench_parallel.log
time target/release/bench_pack BENCH_pack.json > results/bench_pack.log 2>&1
echo ALL_DONE
