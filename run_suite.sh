#!/bin/bash
# Regenerates every table and figure of the paper into results/.
set -x
cd /root/repo
cargo build --release -p ccq-bench 2> results/build.log
time target/release/fig5_power > results/fig5_power.csv 2> results/fig5_power.log
time target/release/fig4_lr > results/fig4_lr.csv 2> results/fig4_lr.log
time target/release/fig2_curve > results/fig2_curve.csv 2> results/fig2_curve.log
time target/release/fig3_recovery > results/fig3_recovery.csv 2> results/fig3_recovery.log
time target/release/fig1_lambda > results/fig1_lambda.csv 2> results/fig1_lambda.log
time target/release/table1 > results/table1.csv 2> results/table1.log
time target/release/ablations > results/ablations.csv 2> results/ablations.log
time target/release/table2 > results/table2.csv 2> results/table2.log
echo ALL_DONE
