//! Umbrella crate for the CCQ reproduction workspace.
//!
//! This crate re-exports every member crate so that the repository-level
//! examples (in `examples/`) and integration tests (in `tests/`) can use a
//! single dependency. Library users should normally depend on the member
//! crates directly:
//!
//! - [`tensor`] — dense `f32` tensors and numeric kernels
//! - [`quant`] — quantization policies (DoReFa, WRPN, PACT, SAWB, ...)
//! - [`nn`] — layers, backprop, optimizers, learning-rate schedules
//! - [`data`] — synthetic datasets and augmentation
//! - [`models`] — ResNet-style architecture builders
//! - [`hw`] — MAC energy/power and model-size analysis
//! - [`infer`] — packed low-bit inference and the `CCQPACK` artifact
//! - [`ccq`] — the competitive-collaborative quantization framework
//!
//! # Example
//!
//! ```
//! use ccq_repro::tensor::Tensor;
//!
//! let t = Tensor::zeros(&[2, 3]);
//! assert_eq!(t.shape(), &[2, 3]);
//! ```

pub use ccq;
pub use ccq_data as data;
pub use ccq_hw as hw;
pub use ccq_infer as infer;
pub use ccq_models as models;
pub use ccq_nn as nn;
pub use ccq_quant as quant;
pub use ccq_tensor as tensor;
